"""Degraded-mode striping: a dead member fails only its own streams.

The headline property (ISSUE 4): kill one of *k* member disks mid-run
and the surviving streams' progress is **bit-for-bit identical** to a
run that never had the doomed stream at all — a dead disk fails fast at
the volume, without queueing work on (or stealing host time from) the
survivors.

The workload is constructed for independence: one disk per controller,
chunk-aligned clients that each touch exactly one member disk (virtual
offsets with stride ``width * chunk``), generous host CPUs, and no
per-buffer completion cost — so the only coupling between streams would
be a bug in the degraded path itself.
"""

import pytest

from repro.disk import WD800JD
from repro.faults import DiskDeadError, DiskDeath, FaultPlan, FaultyDevice
from repro.io import IOKind, IORequest
from repro.node import NodeTopology, StripedVolume, build_node
from repro.node.node import HostParams
from repro.sim import Simulator
from repro.units import KiB

WIDTH = 4
CHUNK = 256 * KiB
DURATION = 4.0
KILL_AT = 1.5
DOOMED = 2  # member index (and disk id) killed mid-run


def _topology():
    return NodeTopology(
        disk_spec=WD800JD,
        disks_per_controller=[1] * WIDTH,  # independent controllers
        host=HostParams(cpus=8, completion_per_buffer_s=0.0),
        seed=7)


class _MemberClient:
    """Reads only the chunks mapping to one member disk (stride k*chunk),
    tolerating fail-fast errors from the degraded volume."""

    def __init__(self, sim, volume, member_index):
        self.sim = sim
        self.volume = volume
        self.member = member_index
        self.completed_bytes = 0
        self.errors = 0
        self.completions = []  # (sim time, virtual offset)

    def start(self):
        return self.sim.process(self._run(),
                                name=f"member{self.member}")

    def _run(self):
        stride = WIDTH * CHUNK
        offset = self.member * CHUNK
        while offset + CHUNK <= self.volume.capacity_bytes:
            request = IORequest(kind=IOKind.READ, disk_id=0,
                                offset=offset, size=CHUNK,
                                stream_id=self.member)
            try:
                yield self.volume.submit(request)
            except DiskDeadError:
                self.errors += 1
                return  # this member is gone; the stream ends
            self.completed_bytes += request.size
            self.completions.append((self.sim.now, offset))
            offset += stride


def _run(members, kill_at=None, death_plan=False):
    """Run one configuration; returns (clients by member, volume)."""
    sim = Simulator()
    node = build_node(sim, _topology())
    if death_plan:
        device = FaultyDevice(sim, node, FaultPlan(
            deaths=(DiskDeath(disk_id=DOOMED, at=KILL_AT),)))
    else:
        device = node
    volume = StripedVolume(sim, device, node.disk_ids,
                           chunk_bytes=CHUNK)
    clients = {m: _MemberClient(sim, volume, m) for m in members}
    for client in clients.values():
        client.start()
    if kill_at is not None:
        def reaper(sim):
            yield sim.timeout(kill_at)
            volume.mark_disk_dead(DOOMED)
        sim.process(reaper(sim))
    sim.run(until=DURATION)
    return clients, volume


def test_survivors_bit_identical_to_smaller_fleet():
    """Kill member 2 of 4 mid-run: members 0, 1, 3 progress exactly as
    in a run that never included member 2."""
    survivors = [m for m in range(WIDTH) if m != DOOMED]
    degraded, volume = _run(list(range(WIDTH)), kill_at=KILL_AT)
    baseline, _ = _run(survivors)

    assert volume.degraded and volume.dead_disks == [DOOMED]
    for member in survivors:
        assert degraded[member].errors == 0
        # Bit-for-bit: byte totals AND every completion timestamp.
        assert degraded[member].completed_bytes == \
            baseline[member].completed_bytes
        assert degraded[member].completions == \
            baseline[member].completions

    doomed = degraded[DOOMED]
    assert doomed.errors == 1  # fail-fast after the kill
    assert 0 < doomed.completed_bytes  # it made progress before dying
    assert all(t <= KILL_AT + 1e-9 or t > KILL_AT
               for t, _ in doomed.completions)
    # Fail-fast accounting: the degraded volume recorded the failure.
    assert volume.stats.counter("degraded_failed").count >= 1
    assert volume.stats.counter("disk_deaths").count == 1


def test_death_learned_organically_from_child_failure():
    """Without mark_disk_dead, the volume learns the death from the
    first child request that fails with DiskDeadError."""
    degraded, volume = _run(list(range(WIDTH)), death_plan=True)
    assert volume.degraded and volume.dead_disks == [DOOMED]
    doomed = degraded[DOOMED]
    assert doomed.errors == 1
    for member in range(WIDTH):
        if member != DOOMED:
            assert degraded[member].errors == 0
            assert degraded[member].completed_bytes > 0


def test_spanning_request_fails_fast_without_touching_survivors():
    """A request striped across a dead member fails immediately and
    submits nothing downstream."""
    sim = Simulator()
    node = build_node(sim, _topology())
    volume = StripedVolume(sim, node, node.disk_ids, chunk_bytes=CHUNK)
    volume.mark_disk_dead(DOOMED)
    before = volume.stats.counter("children").count
    # Spans all four members, including the dead one.
    spanning = IORequest(kind=IOKind.READ, disk_id=0, offset=0,
                         size=WIDTH * CHUNK, stream_id=9)
    event = volume.submit(spanning)
    with pytest.raises(DiskDeadError):
        sim.run_until_event(event, limit=1.0)
    # Fail-fast happened at submit time: the clock never moved.
    assert sim.now == 0.0
    assert volume.stats.counter("children").count == before + 1
    # But a request entirely on live members still completes.
    live = IORequest(kind=IOKind.READ, disk_id=0, offset=0,
                     size=CHUNK, stream_id=9)
    ok = volume.submit(live)
    sim.run_until_event(ok, limit=5.0)
    assert live.complete_time is not None


def test_mark_disk_dead_validates_membership():
    sim = Simulator()
    node = build_node(sim, _topology())
    volume = StripedVolume(sim, node, node.disk_ids[:2],
                           chunk_bytes=CHUNK)
    with pytest.raises(ValueError):
        volume.mark_disk_dead(3)
    volume.mark_disk_dead(1)
    volume.mark_disk_dead(1)  # idempotent
    assert volume.dead_disks == [1]
    assert volume.stats.counter("disk_deaths").count == 1
