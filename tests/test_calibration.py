"""Calibration anchors: the numbers the whole reproduction hangs on.

Each test pins one physical quantity of the modelled hardware to its
datasheet/paper value. If any of these drift, every figure's absolute
level moves — catch it here, with a named anchor, rather than in a
mysterious bench failure.
"""

import pytest

from repro.analysis.analytic import AnalyticDiskModel
from repro.controller import ControllerSpec
from repro.disk import DISKSIM_GENERIC, WD800JD, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import build_node, medium_topology
from repro.sim import Simulator
from repro.units import KiB, MS, MiB
from repro.workload import ClientFleet, uniform_streams


def test_anchor_wd800jd_capacity():
    sim = Simulator()
    drive = DiskDrive(sim, WD800JD)
    assert abs(drive.capacity_bytes - 80e9) / 80e9 < 0.01


def test_anchor_rotation_7200rpm():
    assert WD800JD.rotation_time_s == pytest.approx(60.0 / 7200.0)


def test_anchor_average_seek_8_9ms():
    """Random seeks average ~8.9 ms through the calibrated curve."""
    model = AnalyticDiskModel(WD800JD)
    import numpy as np
    rng = np.random.default_rng(0)
    cylinders = model.geometry.cylinders
    samples = rng.integers(0, cylinders, size=(4000, 2))
    times = [model.seek_model.seek_time(abs(int(a) - int(b)))
             for a, b in samples if a != b]
    assert sum(times) / len(times) == pytest.approx(8.9 * MS, rel=0.05)


def test_anchor_full_stroke_realistic():
    model = AnalyticDiskModel(WD800JD)
    assert 12 * MS < model.seek_model.full_stroke_time < 25 * MS


def test_anchor_single_stream_55_60_mb():
    """The paper measures 55-60 MB/s application-level maximum."""
    sim = Simulator()
    drive = DiskDrive(sim, WD800JD, config=DriveConfig(
        rotation_mode=RotationMode.EXPECTED))
    done = {}

    def client(sim):
        offset = 0
        while offset < 64 * MiB:
            yield drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                         offset=offset, size=64 * KiB))
            offset += 64 * KiB
        done["t"] = sim.now

    sim.process(client(sim))
    sim.run()
    rate = 64 * MiB / done["t"] / MiB
    assert 50 < rate <= 62


def test_anchor_cache_8mb():
    sim = Simulator()
    drive = DiskDrive(sim, WD800JD)
    assert drive.cache.capacity_sectors * 512 == pytest.approx(
        8 * MiB, rel=0.01)


def test_anchor_sata_interface_150():
    assert WD800JD.interface_rate == 150 * MiB


def test_anchor_controller_ceiling_450():
    assert ControllerSpec().aggregate_bandwidth == 450 * MiB


def test_anchor_8_disk_node_aggregate():
    """Eight streaming disks approach (but cannot exceed) 2x450 MB/s;
    with one stream per disk they stream near 8 x 55."""
    sim = Simulator()
    node = build_node(sim, medium_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    specs = uniform_streams(1, node.disk_ids, node.capacity_bytes,
                            request_size=256 * KiB)
    report = ClientFleet(sim, node, specs).run(duration=4.0, warmup=1.0)
    assert 350 < report.throughput_mb < 520


def test_anchor_collapse_factor_paper_band():
    """Raw 100-stream collapse lands in the single-digit MB/s band the
    paper's baseline exhibits."""
    sim = Simulator()
    drive = DiskDrive(sim, WD800JD, config=DriveConfig(
        rotation_mode=RotationMode.EXPECTED))
    spacing = drive.capacity_bytes // 100
    spacing -= spacing % (64 * KiB)
    progress = [0]

    def client(sim, base):
        offset = base
        while True:
            yield drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                         offset=offset, size=64 * KiB))
            progress[0] += 64 * KiB
            offset += 64 * KiB

    for stream in range(100):
        sim.process(client(sim, stream * spacing))
    sim.run(until=4.0)
    rate = progress[0] / 4.0 / MiB
    assert 2 < rate < 12


def test_anchor_generic_spec_segments():
    assert DISKSIM_GENERIC.cache_segments == 32
    assert DISKSIM_GENERIC.segment_bytes == 256 * KiB
    assert WD800JD.cache_segments == 16
