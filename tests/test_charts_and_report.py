"""Tests for ASCII charts and the server diagnostic report."""

import pytest

from repro.analysis import ExperimentResult
from repro.analysis.charts import bar_chart, result_chart
from repro.core import ServerParams, StreamServer
from repro.core.server import ServerReport
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_result():
    result = ExperimentResult(experiment_id="figX", title="Demo",
                              x_label="streams", y_label="MB/s")
    series = result.new_series("fast")
    series.add(1, 50.0)
    series.add(10, 25.0)
    series.add(100, 0.0)
    return result


def test_bar_chart_scales_to_max():
    chart = bar_chart(make_result().series[0], width=10)
    lines = chart.splitlines()
    assert lines[0] == "fast"
    assert "50.0" in lines[1]
    # Full-scale bar for the max, ~half for 25, empty for 0.
    assert lines[1].count("█") == 10
    assert 4 <= lines[2].count("█") <= 6
    assert "█" not in lines[3]


def test_bar_chart_empty_series():
    from repro.analysis.metrics import Series
    assert "(no data)" in bar_chart(Series("empty"))


def test_result_chart_includes_all_series():
    result = make_result()
    other = result.new_series("slow")
    other.add(1, 10.0)
    chart = result_chart(result)
    assert "fast" in chart and "slow" in chart
    assert chart.splitlines()[0].startswith("figX")


def test_bar_chart_unit_suffix():
    chart = bar_chart(make_result().series[0], unit=" MB/s")
    assert "50.0 MB/s" in chart


# ---------------------------------------------------------------------------
# ServerReport
# ---------------------------------------------------------------------------

def test_server_report_snapshot():
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=1 * MiB, memory_budget=32 * MiB))

    def client(sim):
        offset = 0
        for _ in range(32):
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=1))
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=30.0)
    report = server.report()
    assert isinstance(report, ServerReport)
    assert report.live_streams == 1
    assert report.detected_streams == 1
    assert report.completed_requests == 32
    assert report.completed_bytes == 32 * 64 * KiB
    assert report.staged_hit_fraction > 0.8
    assert report.direct_fraction < 0.2
    assert report.memory_peak >= 1 * MiB
    text = str(report)
    assert "streams: 1 live" in text
    assert "staged" in text


def test_server_report_empty_server():
    sim = Simulator()
    node = build_node(sim, base_topology())
    server = StreamServer(sim, node)
    report = server.report()
    assert report.completed_requests == 0
    assert report.staged_hit_fraction == 0.0
    assert "0 reqs" in str(report)
