"""Pinned semantics of ``Simulator.run(until=...)``.

These tests are the normative reference for the ``until`` edge cases
(see the ``Simulator.run`` docstring):

* the clock lands exactly on ``until`` when the heap drains early;
* an event scheduled *exactly at* ``until`` **is** processed;
* the first event strictly after ``until`` is left queued;
* the semantics are identical with tracing enabled.
"""

import pytest

from repro.sim import Simulator, Tracer


def test_clock_lands_exactly_on_until_when_heap_drains_early():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(1.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    final = sim.run(until=7.5)
    assert fired == [1.0]
    assert final == 7.5
    assert sim.now == 7.5


def test_run_until_with_empty_heap_still_advances_clock():
    sim = Simulator()
    assert sim.run(until=3.25) == 3.25
    assert sim.now == 3.25


def test_event_scheduled_exactly_at_until_is_processed():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(2.0)
        fired.append("at-until")
        yield sim.timeout(0.5)
        fired.append("after-until")

    sim.process(proc(sim))
    sim.run(until=2.0)
    assert fired == ["at-until"], \
        "the t==until event fires; the strictly-later one does not"
    assert sim.now == 2.0


def test_equal_time_events_at_until_all_fire_in_fifo_order():
    sim = Simulator()
    fired = []

    def proc(sim, tag):
        yield sim.timeout(2.0)
        fired.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(sim, tag))
    sim.run(until=2.0)
    assert fired == ["a", "b", "c"]


def test_event_strictly_after_until_stays_queued():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(3.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=2.999999)
    assert fired == []
    assert sim.now == 2.999999
    assert sim.queue_length == 1
    sim.run()  # drain the rest
    assert fired == [3.0]


def test_run_until_now_processes_current_instant_only():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(0.0)
        fired.append("now")
        yield sim.timeout(1.0)
        fired.append("later")

    sim.process(proc(sim))
    sim.run(until=0.0)
    assert fired == ["now"]
    assert sim.now == 0.0


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=4.0)


def test_repeated_run_until_accumulates():
    sim = Simulator()
    fired = []

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)
            fired.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]
    sim.run(until=4.0)
    assert fired == [1.0, 2.0, 3.0, 4.0]
    assert sim.now == 4.0


def test_until_semantics_identical_with_tracing_enabled():
    """The traced loop is a separate code path; pin it to the same rules."""
    def build(trace):
        sim = Simulator(trace=trace)
        fired = []

        def proc(sim):
            yield sim.timeout(2.0)
            fired.append(sim.now)
            yield sim.timeout(1.0)
            fired.append(sim.now)

        sim.process(proc(sim))
        return sim, fired

    plain_sim, plain_fired = build(None)
    traced = Tracer()
    traced_sim, traced_fired = build(traced)

    assert plain_sim.run(until=2.0) == traced_sim.run(until=2.0)
    assert plain_fired == traced_fired == [2.0]
    assert traced.kernel_steps > 0

    assert plain_sim.run() == traced_sim.run()
    assert plain_fired == traced_fired == [2.0, 3.0]
