"""Shard-merge parity and pickle round-trips for the stats primitives.

The sweep executor pickles per-point stats back from worker processes
and folds shards together; these tests pin that (a) every primitive
merges to exactly what a single unsharded instance would have recorded,
and (b) merging an unpickled shard behaves identically to merging a
locally built one.
"""

import pickle
import random

import pytest

from repro.sim.stats import (Counter, Histogram, IntervalRate,
                             LatencySampler, StatsRegistry,
                             TimeWeightedGauge)


def _samples(seed, n=500):
    rng = random.Random(seed)
    return [rng.expovariate(100.0) for _ in range(n)]


# ---------------------------------------------------------------------------
# per-primitive merge parity
# ---------------------------------------------------------------------------

def test_counter_merge():
    left, right = Counter("c"), Counter("c")
    left.add(10)
    right.add(20)
    right.add(30)
    left.merge(right)
    assert left.count == 3
    assert left.total_bytes == 60


def test_latency_merge_matches_single_sampler():
    whole = LatencySampler("all")
    left, right = LatencySampler("a"), LatencySampler("b")
    first, second = _samples(1), _samples(2)
    for value in first + second:
        whole.observe(value)
    for value in first:
        left.observe(value)
    for value in second:
        right.observe(value)
    left.merge(right)
    assert left.count == whole.count
    assert left.mean == pytest.approx(whole.mean, rel=1e-12)
    assert left.variance == pytest.approx(whole.variance, rel=1e-9)
    assert left.min == whole.min
    assert left.max == whole.max
    # Percentiles are reservoir estimates; they must stay in range and
    # close to the unsharded estimate for a smooth distribution.
    assert left.percentile(0.5) == pytest.approx(whole.percentile(0.5),
                                                 rel=0.25)


def test_latency_merge_empty_cases():
    empty, full = LatencySampler(), LatencySampler()
    for value in _samples(3):
        full.observe(value)
    count, mean = full.count, full.mean
    full.merge(empty)          # no-op
    assert (full.count, full.mean) == (count, mean)
    empty.merge(full)          # copy
    assert empty.count == count
    assert empty.mean == pytest.approx(mean)
    assert empty.percentile(0.9) == full.percentile(0.9)


def test_latency_merge_thins_reservoir_deterministically():
    left, right = LatencySampler(reservoir=64), LatencySampler(reservoir=64)
    for value in _samples(4, 200):
        left.observe(value)
    for value in _samples(5, 200):
        right.observe(value)
    twin_left = pickle.loads(pickle.dumps(left))
    left.merge(right)
    twin_left.merge(pickle.loads(pickle.dumps(right)))
    assert len(left._reservoir) == 64
    assert left._reservoir == twin_left._reservoir  # no randomness


def test_gauge_merge_weighted_mean():
    left = TimeWeightedGauge("g")
    left.set(10.0, 4.0)        # level 0 for 10s, then 4
    right = TimeWeightedGauge("g")
    right.set(5.0, 8.0)        # level 0 for 5s, then 8
    left.merge(right)
    # Windows laid end to end: area 0*10 + 0*5 over 15s so far.
    assert left.mean() == pytest.approx(0.0)
    assert left.level == 12.0  # shards track disjoint populations
    assert left.max_level == 8.0
    left.set(left._last_time + 5.0, 0.0)  # 12 for 5 more seconds
    assert left.mean() == pytest.approx(12.0 * 5.0 / 20.0)


def test_histogram_merge():
    left = Histogram([1.0, 2.0], name="h")
    right = Histogram([1.0, 2.0], name="h")
    for value in (0.5, 1.5, 5.0):
        left.observe(value)
        right.observe(value)
    left.merge(right)
    assert left.counts == [2, 2]
    assert left.overflow == 2
    assert left.total == 6


def test_histogram_merge_bounds_mismatch():
    with pytest.raises(ValueError, match="bounds differ"):
        Histogram([1.0]).merge(Histogram([2.0]))


def test_interval_rate_merge():
    left, right = IntervalRate(1.0), IntervalRate(1.0)
    left.record(0.5, 100)
    right.record(0.6, 50)
    right.record(1.5, 200)
    left.merge(right)
    assert left.rates() == [(0.0, 150.0), (1.0, 200.0)]
    with pytest.raises(ValueError, match="intervals differ"):
        left.merge(IntervalRate(2.0))


# ---------------------------------------------------------------------------
# registry-level merge + the executor's pickle boundary
# ---------------------------------------------------------------------------

def _shard(seed):
    registry = StatsRegistry()
    rng = random.Random(seed)
    for _ in range(100):
        registry.counter("completed").add(64 * 1024)
        registry.latency("latency").observe(rng.expovariate(100.0))
    gauge = registry.gauge("queue")
    for step in range(1, 11):
        gauge.set(float(step), float(rng.randrange(8)))
    return registry


def test_registry_merge_onto_fresh_equals_copy():
    shard = _shard(7)
    fresh = StatsRegistry()
    fresh.merge(shard)
    assert fresh.snapshot() == pytest.approx(shard.snapshot())


def test_registry_merge_accumulates():
    merged = StatsRegistry()
    merged.merge(_shard(1))
    merged.merge(_shard(2))
    assert merged.counter("completed").count == 200
    assert merged.latency("latency").count == 200


@pytest.mark.parametrize("make", [
    lambda: _shard(11),
    lambda: _shard(12),
])
def test_pickled_shard_merges_identically(make):
    """Merging an unpickled shard == merging the original object."""
    shard = make()
    local, remote = StatsRegistry(), StatsRegistry()
    local.merge(shard)
    remote.merge(pickle.loads(pickle.dumps(shard)))
    assert local.snapshot() == remote.snapshot()
    # And the merged registry itself still round-trips.
    again = pickle.loads(pickle.dumps(remote))
    assert again.snapshot() == remote.snapshot()


def test_primitives_pickle_round_trip():
    for primitive in (Counter("c"), TimeWeightedGauge("g"),
                      LatencySampler("l"), Histogram([1.0], name="h"),
                      IntervalRate(1.0)):
        clone = pickle.loads(pickle.dumps(primitive))
        assert type(clone) is type(primitive)
    sampler = LatencySampler("l")
    for value in _samples(9):
        sampler.observe(value)
    clone = pickle.loads(pickle.dumps(sampler))
    assert clone.count == sampler.count
    assert clone.mean == sampler.mean
    assert clone.percentile(0.99) == sampler.percentile(0.99)
