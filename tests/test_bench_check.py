"""The bench --check regression gate: ratios, tolerance, diagnosability.

Measurement functions are stubbed so these tests exercise the gate
logic (ratio math, missing-workload handling, stderr replay of the full
ratio table on failure) without timing anything.
"""

import json

import pytest

from repro.experiments import bench


@pytest.fixture
def stub_rates(monkeypatch):
    monkeypatch.setattr(
        bench, "measure_kernel",
        lambda repeats=3: {"churn": {"events_per_sec": 100.0,
                                     "events_per_run": 10}})
    monkeypatch.setattr(
        bench, "measure_domain",
        lambda repeats=3: {"drive": {"ops_per_sec": 50.0,
                                     "ops_per_run": 5}})


def _baseline(tmp_path, kernel_rate, domain_rate, extra=None):
    report = {
        "kernel": {"churn": {"events_per_sec": kernel_rate,
                             "events_per_run": 10}},
        "domain": {"drive": {"ops_per_sec": domain_rate,
                             "ops_per_run": 5}},
    }
    if extra:
        report["kernel"].update(extra)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(report))
    return str(path)


def test_check_passes_within_tolerance(stub_rates, tmp_path, capsys):
    path = _baseline(tmp_path, kernel_rate=110.0, domain_rate=55.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1) == 0
    captured = capsys.readouterr()
    assert "kernel/churn" in captured.out
    assert "domain/drive" in captured.out
    assert "REGRESSED" not in captured.out
    assert captured.err == ""


def test_check_fails_and_replays_table_on_stderr(stub_rates, tmp_path,
                                                 capsys):
    # Kernel regressed far beyond tolerance; domain is fine.
    path = _baseline(tmp_path, kernel_rate=1000.0, domain_rate=50.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1) == 1
    captured = capsys.readouterr()
    # The COMPLETE ratio table lands on stderr — both the regressed and
    # the healthy workload — so CI logs are diagnosable on their own.
    assert "kernel/churn" in captured.err and "REGRESSED" in captured.err
    assert "domain/drive" in captured.err and " ok" in captured.err
    assert "10.00%" in captured.err  # the measured/recorded ratio


def test_check_flags_missing_workloads(stub_rates, tmp_path, capsys):
    path = _baseline(tmp_path, kernel_rate=100.0, domain_rate=50.0,
                     extra={"gone": {"events_per_sec": 10.0,
                                     "events_per_run": 1}})
    assert bench.run_check(path, tolerance=0.20, repeats=1) == 1
    captured = capsys.readouterr()
    assert "MISSING" in captured.out
    assert "kernel/gone" in captured.err


def test_check_rejects_unreadable_baseline(tmp_path, capsys):
    assert bench.run_check(str(tmp_path / "absent.json"),
                           tolerance=0.2, repeats=1) == 2
    assert "cannot read" in capsys.readouterr().err


def _sequenced_kernel(monkeypatch, rates):
    """Stub measure_kernel to return successive rates per call."""
    calls = iter(rates)

    def fake_kernel(repeats=3):
        return {"churn": {"events_per_sec": next(calls),
                          "events_per_run": 10}}

    monkeypatch.setattr(bench, "measure_kernel", fake_kernel)
    monkeypatch.setattr(
        bench, "measure_domain",
        lambda repeats=3: {"drive": {"ops_per_sec": 50.0,
                                     "ops_per_run": 5}})


def test_check_median_recovers_from_one_noisy_sample(monkeypatch,
                                                     tmp_path, capsys):
    # First sample looks regressed (machine hiccup); the two re-measures
    # come back healthy, so the median clears the gate.
    _sequenced_kernel(monkeypatch, [40.0, 100.0, 100.0])
    path = _baseline(tmp_path, kernel_rate=100.0, domain_rate=50.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1,
                           remeasure=3) == 0
    captured = capsys.readouterr()
    assert "re-measuring (median of 3)" in captured.out
    assert "REGRESSED" not in captured.out
    assert captured.err == ""


def test_check_median_still_fails_persistent_slowdown(monkeypatch,
                                                      tmp_path, capsys):
    # A genuine 2x slowdown survives every re-measure: still a failure.
    _sequenced_kernel(monkeypatch, [50.0, 50.0, 50.0])
    path = _baseline(tmp_path, kernel_rate=100.0, domain_rate=50.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1,
                           remeasure=3) == 1
    captured = capsys.readouterr()
    assert "re-measuring (median of 3)" in captured.out
    assert "kernel/churn" in captured.err and "REGRESSED" in captured.err


def test_check_remeasure_disabled_keeps_first_sample(monkeypatch,
                                                     tmp_path, capsys):
    _sequenced_kernel(monkeypatch, [40.0, 100.0, 100.0])
    path = _baseline(tmp_path, kernel_rate=100.0, domain_rate=50.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1,
                           remeasure=1) == 1
    assert "re-measuring" not in capsys.readouterr().out


def test_check_per_workload_tolerance_override(stub_rates, tmp_path,
                                               capsys):
    # 100 -> 70 is beyond the global 20% but within the workload's own
    # 35% override carried in the baseline entry.
    report = {
        "kernel": {"churn": {"events_per_sec": 140.0,
                             "events_per_run": 10,
                             "tolerance": 0.35}},
        "domain": {"drive": {"ops_per_sec": 50.0, "ops_per_run": 5}},
    }
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(report))
    assert bench.run_check(str(path), tolerance=0.20, repeats=1) == 0
    captured = capsys.readouterr()
    assert "REGRESSED" not in captured.out

    # And the override tightens as well as loosens.
    report["kernel"]["churn"]["tolerance"] = 0.05
    report["kernel"]["churn"]["events_per_sec"] = 110.0
    path.write_text(json.dumps(report))
    assert bench.run_check(str(path), tolerance=0.20, repeats=1) == 1


# ---------------------------------------------------------------------------
# Flatness gates (relative-rate invariants between measured workloads)
# ---------------------------------------------------------------------------


def _stub_streams_scale(monkeypatch, rate_100, rate_10k):
    """Stub both tiers so the streams_scale flatness pair is measured."""
    monkeypatch.setattr(
        bench, "measure_kernel",
        lambda repeats=3: {"churn": {"events_per_sec": 100.0,
                                     "events_per_run": 10}})
    monkeypatch.setattr(
        bench, "measure_domain",
        lambda repeats=3: {
            "streams_scale_100": {"ops_per_sec": rate_100,
                                  "ops_per_run": 1600},
            "streams_scale_10k": {"ops_per_sec": rate_10k,
                                  "ops_per_run": 160000},
        })


def _flat_baseline(tmp_path, rate_100, rate_10k):
    report = {
        "kernel": {"churn": {"events_per_sec": 100.0,
                             "events_per_run": 10}},
        "domain": {
            "streams_scale_100": {"ops_per_sec": rate_100,
                                  "ops_per_run": 1600,
                                  "tolerance": 0.35},
            "streams_scale_10k": {"ops_per_sec": rate_10k,
                                  "ops_per_run": 160000,
                                  "tolerance": 0.35},
        },
    }
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(report))
    return str(path)


def test_check_passes_when_scale_rates_flat(monkeypatch, tmp_path,
                                            capsys):
    _stub_streams_scale(monkeypatch, rate_100=80_000.0, rate_10k=55_000.0)
    path = _flat_baseline(tmp_path, rate_100=80_000.0, rate_10k=55_000.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1,
                           remeasure=1) == 0
    captured = capsys.readouterr()
    assert "flat domain/streams_scale_10k" in captured.out
    assert "NOT FLAT" not in captured.out


def test_check_fails_when_10k_rate_exceeds_2x_of_100(monkeypatch,
                                                     tmp_path, capsys):
    # Both workloads within their own regression tolerance vs the
    # recorded baseline, but the *relation* between them broke: per-op
    # cost at 10k streams is now 4x the 100-stream cost. Only the
    # flatness gate can catch this.
    _stub_streams_scale(monkeypatch, rate_100=80_000.0, rate_10k=20_000.0)
    path = _flat_baseline(tmp_path, rate_100=80_000.0, rate_10k=21_000.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1,
                           remeasure=1) == 1
    captured = capsys.readouterr()
    assert "NOT FLAT" in captured.err
    assert "4.00x" in captured.err


def test_flatness_gate_skipped_without_paired_workloads(stub_rates,
                                                        tmp_path, capsys):
    # Neither streams_scale workload in the measurement: no gate rows.
    path = _baseline(tmp_path, kernel_rate=100.0, domain_rate=50.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1) == 0
    assert "flat " not in capsys.readouterr().out


def test_evaluate_flatness_ratio_math():
    rows, failed = bench._evaluate_flatness({
        "domain/streams_scale_100": 100.0,
        "domain/streams_scale_10k": 50.0})
    assert failed == []
    assert "ratio= 2.00x" in rows[0]
    rows, failed = bench._evaluate_flatness({
        "domain/streams_scale_100": 100.0,
        "domain/streams_scale_10k": 49.0})
    assert len(failed) == 1


# ---------------------------------------------------------------------------
# Sweep tier (fabric fan-out) gating
# ---------------------------------------------------------------------------

_SWEEP_ENTRY = {"points_per_run": 16, "service_s": 0.05,
                "points_per_sec": {"1": 20.0, "4": 80.0},
                "tolerance": 0.5}


def test_recorded_rates_flatten_sweep_per_worker_count():
    report = {"sweep": {"sweep_fanout": dict(_SWEEP_ENTRY)}}
    rates = bench._recorded_rates(report)
    assert rates == {"sweep/sweep_fanout@w1": 20.0,
                     "sweep/sweep_fanout@w4": 80.0}
    tolerances = bench._recorded_tolerances(report, default=0.2)
    assert tolerances["sweep/sweep_fanout@w1"] == 0.5
    assert tolerances["sweep/sweep_fanout@w4"] == 0.5


def test_sweep_tier_skipped_on_backend_mismatch():
    from repro.sim.eventcore import resolve_backend
    active = resolve_backend(None)
    report = {"eventcore": "someone-elses-backend/0",
              "kernel_backends": {active: {"churn": {
                  "events_per_sec": 10.0, "events_per_run": 1}}},
              "sweep": {"sweep_fanout": dict(_SWEEP_ENTRY)}}
    rates = bench._recorded_rates(report)
    assert not any(name.startswith("sweep/") for name in rates)


def test_check_gates_sweep_and_skips_measuring_when_absent(
        stub_rates, tmp_path, monkeypatch, capsys):
    # Baseline without a sweep tier: the (expensive, process-spawning)
    # fan-out measurement must not run at all.
    def exploding_sweep():
        raise AssertionError("measure_sweep called without baseline")
    monkeypatch.setattr(bench, "measure_sweep", exploding_sweep)
    path = _baseline(tmp_path, kernel_rate=100.0, domain_rate=50.0)
    assert bench.run_check(path, tolerance=0.20, repeats=1) == 0

    # Baseline with a sweep tier: gated like any workload.
    monkeypatch.setattr(
        bench, "measure_sweep",
        lambda: {"sweep_fanout": {"points_per_sec": {"1": 20.0,
                                                     "4": 30.0}}})
    report = json.loads((tmp_path / "baseline.json").read_text())
    report["sweep"] = {"sweep_fanout": dict(_SWEEP_ENTRY)}
    sweep_path = tmp_path / "with_sweep.json"
    sweep_path.write_text(json.dumps(report))
    # w1 holds (20 vs 20); w4 fell 80 -> 30, past the 0.5 tolerance.
    assert bench.run_check(str(sweep_path), tolerance=0.20, repeats=1,
                           remeasure=1) == 1
    captured = capsys.readouterr()
    assert "sweep/sweep_fanout@w4" in captured.err
    assert "REGRESSED" in captured.err
