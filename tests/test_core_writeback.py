"""Tests for the write-coalescing extension (DESIGN.md §5)."""

import pytest

from repro.core import ServerParams, StreamServer, WriteCoalescer, \
    WriteCoalescerParams
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_stack(sim, **param_kwargs):
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    params = WriteCoalescerParams(**param_kwargs) if param_kwargs else None
    return WriteCoalescer(sim, node, params), node


def write(offset, size=64 * KiB, stream=1, disk=0):
    return IORequest(kind=IOKind.WRITE, disk_id=disk, offset=offset,
                     size=size, stream_id=stream)


def test_ack_is_fast_write_behind():
    sim = Simulator()
    coalescer, _node = make_stack(sim)
    event = coalescer.write(write(0))
    sim.run_until_event(event, limit=1.0)
    # Absorbed into a gather buffer: microseconds, not disk time.
    assert event.value.latency < 0.001


def test_rejects_reads():
    sim = Simulator()
    coalescer, _node = make_stack(sim)
    with pytest.raises(ValueError):
        coalescer.write(IORequest(kind=IOKind.READ, disk_id=0, offset=0,
                                  size=4 * KiB))


def test_sequential_writes_coalesce_into_large_flushes():
    sim = Simulator()
    coalescer, node = make_stack(sim, coalesce_bytes=1 * MiB)
    for index in range(32):  # 2 MiB of 64K writes
        coalescer.write(write(index * 64 * KiB))
    sim.run_until_event(coalescer.flush_all(), limit=10.0)
    drive = node.drive(0)
    flushes = coalescer.stats.counter("flushes")
    assert flushes.total_bytes == 2 * MiB
    assert flushes.count <= 3  # ~2 x 1 MiB flushes, not 32 x 64K
    assert drive.stats.counter("media_write").total_bytes == 2 * MiB


def test_non_contiguous_write_flushes_previous_run():
    sim = Simulator()
    coalescer, _node = make_stack(sim)
    coalescer.write(write(0))
    coalescer.write(write(64 * KiB))
    coalescer.write(write(500 * MiB))  # jump
    sim.run(until=0.1)
    assert coalescer.stats.counter("flushes").count >= 1
    assert coalescer.stats.counter("flushes").total_bytes >= 128 * KiB


def test_streams_gather_independently():
    sim = Simulator()
    coalescer, _node = make_stack(sim, coalesce_bytes=4 * MiB)
    coalescer.write(write(0, stream=1))
    coalescer.write(write(500 * MiB, stream=2))
    coalescer.write(write(64 * KiB, stream=1))  # continues stream 1
    sim.run(until=0.01)
    assert len(coalescer._buffers) == 2
    assert coalescer.dirty_bytes == 3 * 64 * KiB


def test_timeout_flushes_idle_buffers():
    sim = Simulator()
    coalescer, node = make_stack(sim, flush_timeout=0.2)
    coalescer.write(write(0))
    sim.run()  # flusher drains after the timeout
    assert coalescer.dirty_bytes == 0
    assert node.drive(0).stats.counter("media_write").total_bytes \
        == 64 * KiB


def test_memory_budget_forces_flush():
    sim = Simulator()
    coalescer, _node = make_stack(sim, coalesce_bytes=1 * MiB,
                                  memory_budget=1 * MiB)
    events = [coalescer.write(write(index * 64 * KiB, stream=index))
              for index in range(32)]  # 32 streams x 64K = 2 MiB dirty
    for event in events:
        sim.run_until_event(event, limit=10.0)
    assert coalescer.dirty_bytes <= 1 * MiB


def test_flush_all_barrier():
    sim = Simulator()
    coalescer, node = make_stack(sim)
    for index in range(4):
        coalescer.write(write(index * 64 * KiB))
    sim.run_until_event(coalescer.flush_all(), limit=5.0)
    assert coalescer.dirty_bytes == 0
    assert node.drive(0).stats.counter("media_write").total_bytes \
        == 4 * 64 * KiB


def test_params_validation():
    with pytest.raises(ValueError):
        WriteCoalescerParams(coalesce_bytes=100)
    with pytest.raises(ValueError):
        WriteCoalescerParams(coalesce_bytes=1 * MiB, memory_budget=512 * KiB)
    with pytest.raises(ValueError):
        WriteCoalescerParams(flush_timeout=0)


def test_server_integration_routes_writes():
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(coalesce_writes=True))
    events = [server.submit(write(index * 64 * KiB))
              for index in range(16)]
    for event in events:
        sim.run_until_event(event, limit=5.0)
    assert server.write_coalescer.stats.counter("absorbed").count == 16
    assert server.stats.counter("direct").count == 0


def test_server_without_flag_passes_writes_through():
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams())
    event = server.submit(write(0))
    sim.run_until_event(event, limit=5.0)
    assert server.write_coalescer is None
    assert server.stats.counter("direct").count == 1


def test_write_throughput_improves_with_coalescing():
    """Many interleaved sequential write streams: coalescing wins."""
    def run(coalesce):
        sim = Simulator()
        node = build_node(sim, base_topology(
            disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
        server = StreamServer(sim, node, ServerParams(
            coalesce_writes=coalesce, write_coalesce_bytes=2 * MiB,
            write_memory_budget=256 * MiB))
        num_streams, per_stream = 30, 2 * MiB
        spacing = node.capacity_bytes // num_streams
        spacing -= spacing % (64 * KiB)

        def writer(sim, stream):
            offset = stream * spacing
            for _ in range(per_stream // (64 * KiB)):
                yield server.submit(write(offset, stream=stream))
                offset += 64 * KiB

        processes = [sim.process(writer(sim, s))
                     for s in range(num_streams)]
        done = sim.all_of(processes)
        sim.run_until_event(done, limit=300.0)
        elapsed = sim.now
        if coalesce:
            sim.run_until_event(server.write_coalescer.flush_all(),
                                limit=300.0)
            elapsed = sim.now
        return num_streams * per_stream / elapsed

    assert run(True) > 2 * run(False)
