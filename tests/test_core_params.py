"""Tests for ServerParams: invariants, derivation, autotuning."""

import pytest

from repro.core import ServerParams
from repro.units import GiB, KiB, MiB


def test_defaults_valid():
    params = ServerParams()
    assert params.effective_dispatch_width >= 1
    assert params.dispatch_memory <= params.memory_budget


def test_derived_dispatch_width():
    params = ServerParams(read_ahead=1 * MiB, requests_per_residency=1,
                          memory_budget=16 * MiB)
    assert params.effective_dispatch_width == 16


def test_explicit_dispatch_width_kept():
    params = ServerParams(read_ahead=1 * MiB, dispatch_width=4,
                          memory_budget=16 * MiB)
    assert params.effective_dispatch_width == 4


def test_residency_bytes():
    params = ServerParams(read_ahead=512 * KiB, requests_per_residency=128,
                          memory_budget=512 * MiB)
    assert params.residency_bytes == 64 * MiB


def test_memory_invariant_enforced():
    # M < R*N is unsatisfiable (no D >= 1 fits).
    with pytest.raises(ValueError):
        ServerParams(read_ahead=8 * MiB, requests_per_residency=2,
                     memory_budget=8 * MiB)


def test_zero_read_ahead_is_passthrough_config():
    params = ServerParams(read_ahead=0)
    assert params.effective_dispatch_width == 1


def test_validated_against_host_memory():
    params = ServerParams(read_ahead=1 * MiB, memory_budget=64 * MiB)
    assert params.validated_against(1 * GiB) is params
    with pytest.raises(ValueError):
        params.validated_against(32 * MiB)


def test_validated_against_checks_drn():
    params = ServerParams(read_ahead=1 * MiB, dispatch_width=256,
                          requests_per_residency=1,
                          memory_budget=64 * MiB)
    with pytest.raises(ValueError):
        params.validated_against(1 * GiB)  # D*R*N = 256M > M = 64M


def test_field_validation():
    with pytest.raises(ValueError):
        ServerParams(read_ahead=-1)
    with pytest.raises(ValueError):
        ServerParams(read_ahead=1000)  # unaligned
    with pytest.raises(ValueError):
        ServerParams(requests_per_residency=0)
    with pytest.raises(ValueError):
        ServerParams(memory_budget=-1)
    with pytest.raises(ValueError):
        ServerParams(classifier_block=100)
    with pytest.raises(ValueError):
        ServerParams(classifier_window_blocks=0)
    with pytest.raises(ValueError):
        ServerParams(classifier_threshold=0)
    with pytest.raises(ValueError):
        ServerParams(gap_tolerance=-1)
    with pytest.raises(ValueError):
        ServerParams(gc_period=0)
    with pytest.raises(ValueError):
        ServerParams(dispatch_width=0)


def test_autotune_one_stream_per_disk():
    params = ServerParams.autotune(num_disks=8, memory_bytes=1 * GiB)
    assert params.dispatch_width == 8
    assert params.dispatch_memory <= params.memory_budget
    assert params.memory_budget <= 1 * GiB


def test_autotune_shrinks_residency_under_memory_pressure():
    params = ServerParams.autotune(num_disks=8, memory_bytes=64 * MiB)
    assert params.dispatch_memory <= params.memory_budget
    assert params.requests_per_residency < 128


def test_autotune_validation():
    with pytest.raises(ValueError):
        ServerParams.autotune(num_disks=0, memory_bytes=1 * GiB)
    with pytest.raises(ValueError):
        ServerParams.autotune(num_disks=1, memory_bytes=0)


def test_replace():
    params = ServerParams(read_ahead=1 * MiB)
    bigger = params.replace(read_ahead=8 * MiB, memory_budget=512 * MiB)
    assert bigger.read_ahead == 8 * MiB
    assert params.read_ahead == 1 * MiB  # original untouched
