"""Quantile-sketch correctness properties (DESIGN.md §10).

The observability plane's percentile engine carries a *guaranteed*
relative-error bound and must compose: per-worker sketches merge into
fleet aggregates associatively and commutatively, and sketches survive
the fabric wire (pickle / ``to_dict``) losslessly. These properties are
load-bearing — ``ext-fleet``'s published percentiles and every SLO
``latency`` objective read through this code — so they are pinned
against exact nearest-rank quantiles over adversarial distributions:
point masses, heavy tails, mixed signs, zeros.
"""

import math
import pickle
import random

import pytest

from repro.obs.sketch import (DEFAULT_ACCURACY, QuantileSketch, sketch_of)

QS = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0)


def assert_within_bound(sketch, values, alpha, qs=QS):
    ordered = sorted(values)
    for q in qs:
        got = sketch.quantile(q)
        # The estimate must be within alpha relative error of *some*
        # value adjacent to the exact rank (nearest-rank ties mean the
        # exact answer itself is ambiguous by one position).
        rank = q * (len(ordered) - 1)
        lo = ordered[math.floor(rank)]
        hi = ordered[min(len(ordered) - 1, math.ceil(rank))]
        tolerance = alpha * max(abs(lo), abs(hi)) + 1e-12
        assert lo - tolerance <= got <= hi + tolerance, \
            (q, got, lo, hi, tolerance)


# ---------------------------------------------------------------------------
# relative-error bound across adversarial distributions
# ---------------------------------------------------------------------------

def test_bound_uniform():
    rng = random.Random(1)
    values = [rng.uniform(1e-4, 10.0) for _ in range(20000)]
    assert_within_bound(sketch_of(values), values, DEFAULT_ACCURACY)


def test_bound_heavy_tail():
    rng = random.Random(2)
    values = [rng.lognormvariate(0.0, 2.5) for _ in range(20000)]
    assert_within_bound(sketch_of(values), values, DEFAULT_ACCURACY)


def test_bound_point_masses():
    values = [0.001] * 5000 + [1.0] * 5000 + [1000.0] * 10
    sketch = sketch_of(values)
    assert_within_bound(sketch, values, DEFAULT_ACCURACY)
    # The p999 must see the tiny point mass at the top.
    assert sketch.quantile(0.9999) == pytest.approx(1000.0, rel=0.01)


def test_bound_mixed_signs_and_zeros():
    rng = random.Random(3)
    values = ([rng.uniform(-5.0, -1e-3) for _ in range(5000)]
              + [0.0] * 3000
              + [rng.uniform(1e-3, 5.0) for _ in range(5000)])
    rng.shuffle(values)
    assert_within_bound(sketch_of(values), values, DEFAULT_ACCURACY)


def test_bound_subnormal_magnitudes_collapse_to_zero():
    values = [1e-15, -1e-30, 0.0, 2.0]
    sketch = sketch_of(values)
    assert sketch.zeros == 3
    assert sketch.quantile(0.25) == 0.0
    assert sketch.quantile(1.0) == 2.0


def test_extremes_are_exact():
    rng = random.Random(4)
    values = [rng.expovariate(1.0) for _ in range(5000)]
    sketch = sketch_of(values)
    assert sketch.quantile(0.0) == min(values)
    assert sketch.quantile(1.0) == max(values)


def test_coarse_accuracy_still_bounded():
    rng = random.Random(5)
    values = [rng.lognormvariate(0.0, 1.0) for _ in range(10000)]
    alpha = 0.1
    assert_within_bound(sketch_of(values, relative_accuracy=alpha),
                        values, alpha)


# ---------------------------------------------------------------------------
# merge algebra
# ---------------------------------------------------------------------------

def _shards(seed, n=4, per=4000):
    rng = random.Random(seed)
    return [[rng.lognormvariate(0.0, 1.5) for _ in range(per)]
            for _ in range(n)]


def _merged(parts):
    total = QuantileSketch()
    for part in parts:
        total.merge(part)
    return total


def test_merge_commutative():
    a, b = (sketch_of(shard) for shard in _shards(10, n=2))
    ab = a.copy()
    ab.merge(b)
    ba = b.copy()
    ba.merge(a)
    assert ab.to_dict() == ba.to_dict()
    assert ab.quantiles(QS) == ba.quantiles(QS)


def test_merge_associative():
    a, b, c = (sketch_of(shard) for shard in _shards(11, n=3))
    left = a.copy()
    left.merge(b)
    left.merge(c)
    bc = b.copy()
    bc.merge(c)
    right = a.copy()
    right.merge(bc)
    assert left.to_dict()["pos"] == right.to_dict()["pos"]
    assert left.to_dict()["neg"] == right.to_dict()["neg"]
    assert left.count == right.count
    assert left.quantiles(QS) == right.quantiles(QS)


def test_merge_equals_single_sketch_within_bound():
    shards = _shards(12)
    flat = [value for shard in shards for value in shard]
    merged = _merged([sketch_of(shard) for shard in shards])
    assert merged.count == len(flat)
    assert_within_bound(merged, flat, DEFAULT_ACCURACY)
    # Bucket contents are identical to one sketch fed everything.
    one = sketch_of(flat)
    assert merged.to_dict()["pos"] == one.to_dict()["pos"]


def test_merge_grid_mismatch_raises():
    with pytest.raises(ValueError):
        QuantileSketch(relative_accuracy=0.01).merge(
            QuantileSketch(relative_accuracy=0.02))
    with pytest.raises(ValueError):
        QuantileSketch(min_value=1e-9).merge(QuantileSketch(min_value=1e-6))


def test_merge_does_not_mutate_source():
    a, b = (sketch_of(shard) for shard in _shards(13, n=2))
    before = b.to_dict()
    a.merge(b)
    assert b.to_dict() == before


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def test_pickle_round_trip_identity():
    sketch = sketch_of(_shards(20, n=1)[0])
    clone = pickle.loads(pickle.dumps(sketch))
    assert clone.to_dict() == sketch.to_dict()
    assert clone.quantiles(QS) == sketch.quantiles(QS)


def test_dict_round_trip_identity():
    values = [-3.0, -1e-12, 0.0, 0.25, 0.25, 7.5]
    sketch = sketch_of(values)
    state = sketch.to_dict()
    import json
    clone = QuantileSketch.from_dict(json.loads(json.dumps(state)))
    assert clone.to_dict() == state
    assert clone.quantiles(QS) == sketch.quantiles(QS)


def test_empty_sketch_round_trip_and_reads():
    sketch = QuantileSketch()
    assert sketch.quantile(0.5) == 0.0
    assert sketch.mean == 0.0
    assert len(sketch) == 0
    clone = QuantileSketch.from_dict(sketch.to_dict())
    assert clone.count == 0
    assert clone.quantile(0.99) == 0.0


# ---------------------------------------------------------------------------
# determinism, validation, backstops
# ---------------------------------------------------------------------------

def test_ingest_order_invariant():
    values = _shards(30, n=1, per=5000)[0]
    forward = sketch_of(values)
    backward = sketch_of(list(reversed(values)))
    fwd, bwd = forward.to_dict(), backward.to_dict()
    # The running float sum is order-sensitive in its last bits; every
    # structural field (buckets, counts, extrema) must match exactly.
    assert fwd.pop("sum") == pytest.approx(bwd.pop("sum"))
    assert fwd == bwd
    assert forward.quantiles(QS) == backward.quantiles(QS)


def test_weighted_add_equals_repetition():
    sketch = QuantileSketch()
    sketch.add(0.5, count=1000)
    repeated = sketch_of([0.5] * 1000)
    assert sketch.to_dict() == repeated.to_dict()


def test_invalid_inputs_raise():
    sketch = QuantileSketch()
    with pytest.raises(ValueError):
        sketch.add(float("nan"))
    with pytest.raises(ValueError):
        sketch.add(1.0, count=0)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    with pytest.raises(ValueError):
        QuantileSketch(relative_accuracy=1.0)
    with pytest.raises(ValueError):
        QuantileSketch(min_value=0.0)


def test_max_bins_collapse_preserves_tail():
    # Enough dynamic range to overflow a tiny bucket budget: collapse
    # must fold the *low* end and keep tail quantiles in bound.
    values = [10.0 ** (i % 12) * (1 + (i % 7) / 10.0)
              for i in range(4000)]
    sketch = QuantileSketch(max_bins=16)
    sketch.extend(values)
    ordered = sorted(values)
    exact99 = ordered[min(len(ordered) - 1,
                          math.ceil(0.99 * (len(ordered) - 1)))]
    assert sketch.quantile(0.99) == pytest.approx(exact99, rel=0.05)
    assert sketch.count == len(values)


def test_mean_and_count_exact():
    values = _shards(40, n=1, per=2000)[0]
    sketch = sketch_of(values)
    assert sketch.count == len(values)
    assert sketch.mean == pytest.approx(sum(values) / len(values))


# ---------------------------------------------------------------------------
# experiment integration: ext-fleet's percentile path
# ---------------------------------------------------------------------------

def test_ext_fleet_percentiles_within_stated_bound():
    """The sweep percentiles (p50/p99/p999) computed the way ext-fleet
    and ext-fleet-openloop compute them stay within the experiments'
    documented ``PERCENTILE_ACCURACY`` of the exact sorted-list values
    the raw implementation used to report."""
    from repro.experiments.ext_fleet import PERCENTILE_ACCURACY
    from repro.experiments import ext_fleet_openloop
    assert ext_fleet_openloop.PERCENTILE_ACCURACY == PERCENTILE_ACCURACY
    rng = random.Random(99)
    # Latency-shaped: a fast mode, a queueing tail, stragglers.
    durations = ([rng.gauss(0.02, 0.004) for _ in range(30000)]
                 + [rng.lognormvariate(-2.0, 1.0) for _ in range(3000)]
                 + [rng.uniform(1.0, 8.0) for _ in range(30)])
    durations = [abs(value) for value in durations]
    sketch = QuantileSketch(relative_accuracy=PERCENTILE_ACCURACY)
    sketch.extend(durations)
    assert_within_bound(sketch, durations, PERCENTILE_ACCURACY,
                        qs=(0.50, 0.99, 0.999))


# ---------------------------------------------------------------------------
# LatencySampler integration (the sim-layer consumer)
# ---------------------------------------------------------------------------

def test_latency_sampler_sketch_backend_bound():
    from repro.sim.stats import LatencySampler
    rng = random.Random(50)
    values = [rng.lognormvariate(-5.0, 1.0) for _ in range(30000)]
    sampler = LatencySampler("svc", sketch=0.01)
    for value in values:
        sampler.observe(value)
    ordered = sorted(values)
    for q in (0.5, 0.99, 0.999):
        exact = ordered[min(len(ordered) - 1,
                            math.ceil(q * (len(ordered) - 1)))]
        assert sampler.percentile(q) == pytest.approx(exact, rel=0.011)
    assert sampler.count == len(values)


def test_latency_sampler_sketch_merge_and_mismatch():
    from repro.sim.stats import LatencySampler
    rng = random.Random(51)
    values = [rng.expovariate(10.0) for _ in range(2000)]
    whole = LatencySampler(sketch=0.01)
    left = LatencySampler(sketch=0.01)
    right = LatencySampler(sketch=0.01)
    for value in values:
        whole.observe(value)
    for value in values[:1000]:
        left.observe(value)
    for value in values[1000:]:
        right.observe(value)
    left.merge(right)
    assert left.percentile(0.99) == whole.percentile(0.99)
    assert left.count == whole.count
    plain = LatencySampler()
    plain.observe(1.0)
    with pytest.raises(ValueError):
        plain.merge(whole)


def test_latency_sampler_default_unchanged():
    from repro.sim.stats import LatencySampler
    sampler = LatencySampler()
    for value in (0.4, 0.2, 0.9):
        sampler.observe(value)
    assert sampler._sketch is None
    assert sampler.percentile(0.5) == 0.4
