"""Tests for result containers, tables, and shape checks."""

import pytest

from repro.analysis import (
    ExperimentResult,
    Series,
    format_table,
    max_drop_factor,
    monotone_decreasing,
    monotone_increasing,
    series_ratio,
)


def make_result():
    result = ExperimentResult(experiment_id="figX", title="Demo",
                              x_label="streams", y_label="MB/s")
    a = result.new_series("fast")
    a.add(1, 50.0)
    a.add(10, 45.0)
    b = result.new_series("slow")
    b.add(1, 40.0)
    b.add(10, 10.0)
    return result


def test_series_accessors():
    series = Series("s")
    series.add(1, 2.0)
    series.add(2, 4.0)
    assert series.xs == [1, 2]
    assert series.ys == [2.0, 4.0]
    assert series.y_at(2) == 4.0
    with pytest.raises(KeyError):
        series.y_at(99)


def test_result_get_and_labels():
    result = make_result()
    assert result.labels == ["fast", "slow"]
    assert result.get("fast").y_at(1) == 50.0
    with pytest.raises(KeyError):
        result.get("missing")


def test_result_as_dict():
    data = make_result().as_dict()
    assert data["slow"][10] == 10.0


def test_format_table_contains_all_cells():
    table = format_table(make_result())
    assert "figX" in table
    assert "fast" in table and "slow" in table
    assert "50.00" in table and "10.00" in table


def test_format_table_missing_cells_dashed():
    result = make_result()
    result.get("fast").add(100, 44.0)  # only in one series
    table = format_table(result)
    assert "-" in table.splitlines()[-1]


def test_monotone_checks():
    assert monotone_decreasing([50, 45, 30, 10])
    assert not monotone_decreasing([10, 50])
    assert monotone_decreasing([50, 51], tolerance=0.05)  # within noise
    assert monotone_increasing([1, 2, 3])
    assert not monotone_increasing([3, 1])


def test_max_drop_factor():
    assert max_drop_factor([50, 10]) == pytest.approx(5.0)
    assert max_drop_factor([10]) == 1.0
    assert max_drop_factor([5, 0.0]) == float("inf")
    with pytest.raises(ValueError):
        max_drop_factor([])


def test_series_ratio():
    result = make_result()
    ratios = series_ratio(result.get("fast"), result.get("slow"))
    assert ratios == [pytest.approx(50 / 40), pytest.approx(4.5)]


def test_series_ratio_requires_shared_xs():
    a = Series("a")
    a.add(1, 1.0)
    b = Series("b")
    b.add(2, 1.0)
    with pytest.raises(ValueError):
        series_ratio(a, b)
