"""Metamorphic drive test: FCFS outcomes are submission-permutation safe.

Under FCFS scheduling with deterministic (EXPECTED) rotational latency,
a batch of same-instant, same-size reads spread across one cylinder
*with gaps between them* is fully symmetric: no request continues
where another ends, so every service pays the same zero-distance seek
plus the same expected rotation plus the same single-track transfer,
whichever order the batch arrives in. Permuting the submission order
must therefore change *nothing* observable in aggregate:

* total service time (the simulated instant the batch completes),
* every request's media sector count (all misses, no read-ahead, so
  each request reads exactly its own sectors),
* the multiset of per-request latencies (who waits longest changes;
  how long the k-th completion waits does not).

This pins the kernel's FIFO contract end to end through the drive: the
``(time, seq)`` heap order, the direct-resume fast path and the batched
same-timestamp drain may not leak submission order into physics.
"""

import itertools

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB, SECTOR_BYTES

NUM_REQUESTS = 5
REQUEST_SIZE = 64 * KiB
#: Distance between request starts. The gap guarantees no request is
#: the sequential continuation of another (the drive's only order-
#: sensitive fast path: a zero-cost reposition), and keeps each
#: request inside a single track so all transfers are identical.
STRIDE = 3 * REQUEST_SIZE

#: Read-ahead off: every request moves exactly its own sectors, which
#: is what makes the per-request sector count assertion exact.
SPEC = DISKSIM_GENERIC.with_cache(read_ahead_bytes=0)


def _run_batch(order):
    """Submit the batch in ``order`` at t=0; return the outcome tuple."""
    sim = Simulator()
    drive = DiskDrive(
        sim, SPEC,
        config=DriveConfig(scheduler="fcfs",
                           rotation_mode=RotationMode.EXPECTED))
    offsets = [index * STRIDE for index in order]
    # The whole batch must sit on one cylinder (zero-distance seeks)
    # and each request within one track (identical transfer times).
    zone = drive.geometry.zones[0]
    last_lba = ((NUM_REQUESTS - 1) * STRIDE + REQUEST_SIZE) \
        // SECTOR_BYTES - 1
    assert drive.geometry.cylinder_of_lba(last_lba) == \
        drive.geometry.cylinder_of_lba(0), "batch spans cylinders"
    for index in range(NUM_REQUESTS):
        start_in_track = (index * STRIDE // SECTOR_BYTES) \
            % zone.sectors_per_track
        assert start_in_track + REQUEST_SIZE // SECTOR_BYTES \
            <= zone.sectors_per_track, "request straddles a track"
        # A run starting exactly on a track boundary is charged the
        # entry switch (mechanics.transfer_time), which would break
        # the requests' symmetry. LBA 0 is exempt by construction.
        assert index == 0 or start_in_track != 0, \
            "request starts on a track boundary"

    events = []

    def client(sim):
        for offset in offsets:
            events.append(drive.submit(IORequest(
                kind=IOKind.READ, disk_id=0,
                offset=offset, size=REQUEST_SIZE)))
        if False:  # pragma: no cover - make this a generator
            yield

    sim.process(client(sim))
    sim.run()

    requests = [event.value for event in events]
    assert all(request.complete_time > 0 for request in requests)
    # All misses: no request was served from cache, so the media moved
    # exactly ``size`` bytes for each one.
    assert not any("disk.hit" in request.annotations
                   for request in requests)
    return {
        "total_time": sim.now,
        "latencies": sorted(round(request.latency, 12)
                            for request in requests),
        "media_read_bytes": drive.stats.counter("media_read").total_bytes,
        "seeks": drive.stats.counter("seeks").count,
        "sectors": sorted((request.offset // SECTOR_BYTES,
                           request.size // SECTOR_BYTES)
                          for request in requests),
    }


def test_fcfs_identity_order_baseline():
    """Sanity: the batch actually exercises the media path."""
    outcome = _run_batch(list(range(NUM_REQUESTS)))
    assert outcome["media_read_bytes"] == NUM_REQUESTS * REQUEST_SIZE
    assert outcome["total_time"] > 0
    assert len(outcome["latencies"]) == NUM_REQUESTS


def test_fcfs_permutation_invariance():
    """Every permutation of same-instant submissions: same physics."""
    baseline = _run_batch(list(range(NUM_REQUESTS)))
    for order in itertools.permutations(range(NUM_REQUESTS)):
        outcome = _run_batch(list(order))
        assert outcome == baseline, f"order {order} diverged"


def test_fcfs_reversed_order_exact_equality():
    """The extreme permutation, asserted field by field for diagnosis."""
    forward = _run_batch(list(range(NUM_REQUESTS)))
    reverse = _run_batch(list(reversed(range(NUM_REQUESTS))))
    assert reverse["total_time"] == forward["total_time"]
    assert reverse["latencies"] == forward["latencies"]
    assert reverse["media_read_bytes"] == forward["media_read_bytes"]
    assert reverse["seeks"] == forward["seeks"]
    assert reverse["sectors"] == forward["sectors"]
