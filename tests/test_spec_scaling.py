"""Physics sanity across disk generations: the model scales correctly
when spec parameters move, not just at the calibrated WD800JD point."""

from dataclasses import replace

import pytest

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB, MS, MiB


def make_drive(sim, **overrides):
    spec = replace(DISKSIM_GENERIC, **overrides)
    return DiskDrive(sim, spec,
                     config=DriveConfig(rotation_mode=RotationMode.EXPECTED))


def sequential_rate(drive, sim, total=16 * MiB):
    done = {}

    def client(sim):
        offset = 0
        while offset < total:
            yield drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                         offset=offset, size=64 * KiB))
            offset += 64 * KiB
        done["t"] = sim.now

    sim.process(client(sim))
    sim.run()
    return total / done["t"]


def random_rate(drive, sim, count=60):
    import numpy as np
    rng = np.random.default_rng(3)
    offsets = rng.integers(0, drive.capacity_bytes - 64 * KiB,
                           size=count)
    offsets = [int(o) - int(o) % (64 * KiB) for o in offsets]
    done = {}

    def client(sim):
        for offset in offsets:
            yield drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                         offset=offset, size=64 * KiB))
        done["t"] = sim.now

    sim.process(client(sim))
    sim.run()
    return count * 64 * KiB / done["t"]


def test_faster_media_streams_faster():
    slow_sim, fast_sim = Simulator(), Simulator()
    slow = make_drive(slow_sim, outer_media_rate=30 * MiB,
                      inner_media_rate=20 * MiB)
    fast = make_drive(fast_sim, outer_media_rate=120 * MiB,
                      inner_media_rate=80 * MiB,
                      interface_rate=300 * MiB)
    slow_rate = sequential_rate(slow, slow_sim)
    fast_rate = sequential_rate(fast, fast_sim)
    assert fast_rate > 3 * slow_rate


def test_faster_spindle_cuts_random_latency():
    """10k RPM with a quicker seek beats 5400 RPM on random reads."""
    slow_sim, fast_sim = Simulator(), Simulator()
    slow = make_drive(slow_sim, rpm=5400.0, average_seek_s=12 * MS)
    fast = make_drive(fast_sim, rpm=10_000.0, average_seek_s=5 * MS)
    assert random_rate(fast, fast_sim) > 1.5 * random_rate(slow, slow_sim)


def test_bigger_disk_longer_seeks():
    small_sim, big_sim = Simulator(), Simulator()
    # Same seek characteristics; 4x the platter area to cross.
    small = make_drive(small_sim, capacity_bytes=40 * 10**9)
    big = make_drive(big_sim, capacity_bytes=160 * 10**9)
    small_stroke = small.mechanics.seek_model.full_stroke_time
    big_stroke = big.mechanics.seek_model.full_stroke_time
    # Full stroke time grows with cylinder count under the same
    # calibration targets (avg fixed at 8.9 ms, longer tail).
    assert big.geometry.cylinders > 3 * small.geometry.cylinders
    assert big_stroke >= small_stroke * 0.95


def test_interface_bound_drive():
    """When the interface is slower than the media, hits bottleneck on
    the interface (PIO-era behaviour)."""
    sim = Simulator()
    drive = make_drive(sim, interface_rate=10 * MiB)
    # Prime the cache, then hit it repeatedly.
    first = drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                   offset=0, size=256 * KiB))
    sim.run()
    start = sim.now
    events = [drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                     offset=0, size=256 * KiB))
              for _ in range(4)]
    sim.run()
    elapsed = sim.now - start
    assert all(e.processed for e in events)
    assert elapsed >= 4 * 256 * KiB / (10 * MiB) * 0.9


def test_zero_track_switch_faster_than_slow_switch():
    fast_sim, slow_sim = Simulator(), Simulator()
    fast = make_drive(fast_sim, track_switch_s=0.0)
    slow = make_drive(slow_sim, track_switch_s=5 * MS)
    assert sequential_rate(fast, fast_sim) > \
        1.2 * sequential_rate(slow, slow_sim)


def test_more_segments_handle_more_streams():
    """Doubling segment count moves the thrash cliff proportionally."""
    def collapse_point(num_segments):
        spec_kwargs = dict(
            cache_bytes=num_segments * 256 * KiB,
            cache_segments=num_segments)
        for streams in (4, 8, 16, 32, 64):
            sim = Simulator()
            drive = make_drive(sim, **spec_kwargs)
            spacing = drive.capacity_bytes // streams
            spacing -= spacing % (64 * KiB)
            progress = [0]

            def client(sim, base):
                offset = base
                while True:
                    yield drive.submit(IORequest(
                        kind=IOKind.READ, disk_id=0, offset=offset,
                        size=64 * KiB))
                    progress[0] += 64 * KiB
                    offset += 64 * KiB

            for s in range(streams):
                sim.process(client(sim, s * spacing))
            sim.run(until=1.5)
            rate = progress[0] / 1.5 / MiB
            if rate < 8:  # collapsed
                return streams
        return 128

    assert collapse_point(32) > collapse_point(8)
