"""Sweep-wide free-list arena (ISSUE 7 satellite).

One fabric worker (or pool worker) runs many simulators over a sweep,
and per-core free-lists mean every point re-allocates its way up to
``POOL_LIMIT`` pooled Timeout/Event objects from scratch. With the
arena enabled, ``make_core`` moves the previous core's pools into each
new core — so a *warm* point allocates strictly fewer objects than a
*cold* one (the pinned claim), and every donated object is re-bound to
the new simulator (the events layer hard-rejects foreign-sim events).
"""

import pytest

from repro.sim import Simulator
from repro.sim import events as events_module
from repro.sim.eventcore import ARENA_ENV_VAR, sweep_arena


@pytest.fixture
def heapq_core(monkeypatch):
    """Pin the pure-python core: its pool mechanics are introspectable
    and identical in shape to the compiled core's."""
    monkeypatch.setenv("REPRO_EVENTCORE", "heapq")


@pytest.fixture
def timeout_allocations(monkeypatch):
    """Counts Timeout.__init__ calls — pool reuse skips the constructor,
    so the count is exactly the number of fresh allocations."""
    counter = {"n": 0}
    original = events_module.Timeout.__init__

    def counting_init(self, *args, **kwargs):
        counter["n"] += 1
        original(self, *args, **kwargs)

    monkeypatch.setattr(events_module.Timeout, "__init__", counting_init)
    return counter


def _fanout_workload(sim, width=100, rounds=5):
    """``width`` concurrent processes, ``rounds`` timeouts each — keeps
    ~``width`` Timeout objects in flight so the pool actually fills."""
    def proc(sim):
        for _ in range(rounds):
            yield sim.timeout(0.001)

    for _ in range(width):
        sim.process(proc(sim))
    sim.run()


def test_arena_disabled_by_default(heapq_core, monkeypatch):
    monkeypatch.delenv(ARENA_ENV_VAR, raising=False)
    sweep_arena().disable()  # order-robust: some tests enable it
    first = Simulator()
    _fanout_workload(first)
    assert len(first._timeout_pool) > 0  # recycled, but core-private
    second = Simulator()
    assert second._timeout_pool == []  # nothing crossed over


def test_warm_point_allocates_less_than_cold(heapq_core,
                                             timeout_allocations):
    arena = sweep_arena()
    arena.enable()
    try:
        cold_sim = Simulator()
        _fanout_workload(cold_sim)
        cold = timeout_allocations["n"]
        assert cold >= 100  # the fan-out really was allocation-heavy

        timeout_allocations["n"] = 0
        warm_sim = Simulator()
        donated = len(warm_sim._timeout_pool)
        assert donated >= 50, "arena donated too little to matter"
        # The donor's pools were *moved*, not copied: one owner only.
        assert cold_sim._timeout_pool == []
        _fanout_workload(warm_sim)
        warm = timeout_allocations["n"]
        assert warm < cold
        assert warm <= cold - donated + 5  # reuse, not coincidence
    finally:
        arena.disable()


def test_adopted_objects_are_rebound_and_usable(heapq_core):
    arena = sweep_arena()
    arena.enable()
    try:
        donor = Simulator()
        _fanout_workload(donor, width=20, rounds=2)
        receiver = Simulator()
        assert receiver._timeout_pool, "expected donated timeouts"
        assert all(t.sim is receiver for t in receiver._timeout_pool)
        assert all(e.sim is receiver for e in receiver._event_pool)
        # A donated object must actually schedule on the new sim.
        fired = []

        def proc(sim):
            yield sim.timeout(0.5)
            fired.append(sim.now)

        receiver.process(proc(receiver))
        receiver.run()
        assert fired == [0.5]
    finally:
        arena.disable()


def test_env_var_activates_arena(heapq_core, monkeypatch):
    monkeypatch.setenv(ARENA_ENV_VAR, "1")
    arena = sweep_arena()
    assert arena.active
    try:
        donor = Simulator()
        _fanout_workload(donor, width=20, rounds=2)
        receiver = Simulator()
        assert receiver._timeout_pool
    finally:
        monkeypatch.delenv(ARENA_ENV_VAR)
        arena.disable()  # drop the retained source core
