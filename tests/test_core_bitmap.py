"""Unit and property tests for region bitmaps and the bitmap table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import BitmapTable, RegionBitmap


# ---------------------------------------------------------------------------
# RegionBitmap
# ---------------------------------------------------------------------------

def test_window_covers_anchor_region():
    bitmap = RegionBitmap(anchor_block=100, window_blocks=32)
    assert bitmap.start_block == 68
    assert bitmap.end_block == 133
    assert bitmap.covers(100)
    assert bitmap.covers(68)
    assert bitmap.covers(132)
    assert not bitmap.covers(67)
    assert not bitmap.covers(133)


def test_window_clipped_at_disk_start():
    bitmap = RegionBitmap(anchor_block=5, window_blocks=32)
    assert bitmap.start_block == 0
    assert bitmap.covers(0)


def test_set_range_counts_bits():
    bitmap = RegionBitmap(anchor_block=100, window_blocks=32, now=1.0)
    assert bitmap.set_range(100, 1, now=2.0) == 1
    assert bitmap.set_range(101, 2, now=3.0) == 3
    assert bitmap.last_touch == 3.0


def test_set_range_idempotent_per_block():
    """Multiple requests to the same block set one bit (paper: ignored)."""
    bitmap = RegionBitmap(anchor_block=100, window_blocks=32)
    bitmap.set_range(100, 1, now=0.0)
    bitmap.set_range(100, 1, now=0.0)
    assert bitmap.popcount == 1


def test_set_range_clips_to_window():
    bitmap = RegionBitmap(anchor_block=100, window_blocks=4)
    # Window covers [96, 105); setting [90, 110) only sets 9 bits.
    assert bitmap.set_range(90, 20, now=0.0) == 9


def test_set_range_outside_window_noop():
    bitmap = RegionBitmap(anchor_block=100, window_blocks=4)
    assert bitmap.set_range(500, 3, now=0.0) == 0


def test_validation():
    with pytest.raises(ValueError):
        RegionBitmap(anchor_block=0, window_blocks=0)
    bitmap = RegionBitmap(anchor_block=10, window_blocks=4)
    with pytest.raises(ValueError):
        bitmap.set_range(10, 0, now=0.0)


@given(anchor=st.integers(min_value=0, max_value=10_000),
       window=st.integers(min_value=1, max_value=64),
       sets=st.lists(st.tuples(st.integers(min_value=0, max_value=10_100),
                               st.integers(min_value=1, max_value=16)),
                     max_size=30))
@settings(max_examples=60)
def test_property_popcount_matches_reference(anchor, window, sets):
    bitmap = RegionBitmap(anchor, window)
    reference = set()
    for first, count in sets:
        bitmap.set_range(first, count, now=0.0)
        for block in range(first, first + count):
            if bitmap.covers(block):
                reference.add(block)
    assert bitmap.popcount == len(reference)


# ---------------------------------------------------------------------------
# BitmapTable
# ---------------------------------------------------------------------------

def test_table_find_after_allocate():
    table = BitmapTable(window_blocks=32, interval=10.0)
    bitmap = table.allocate(disk_id=0, anchor_block=100, now=0.0)
    assert table.find(0, 100) is bitmap
    assert table.find(0, 90) is bitmap
    assert table.find(0, 500) is None
    assert table.find(1, 100) is None  # other disk


def test_table_newest_overlapping_wins():
    table = BitmapTable(window_blocks=32, interval=10.0)
    table.allocate(0, 100, now=0.0)
    newer = table.allocate(0, 110, now=1.0)
    assert table.find(0, 110) is newer


def test_table_expiry():
    table = BitmapTable(window_blocks=32, interval=5.0)
    bitmap = table.allocate(0, 100, now=0.0)
    assert table.expire(now=3.0) == 0
    bitmap.set_range(100, 1, now=4.0)  # touch extends life
    assert table.expire(now=8.0) == 0
    assert table.expire(now=9.5) == 1
    assert table.find(0, 100) is None
    assert table.live_count == 0


def test_table_remove():
    table = BitmapTable(window_blocks=8, interval=10.0)
    bitmap = table.allocate(0, 50, now=0.0)
    table.remove(0, bitmap)
    assert table.find(0, 50) is None
    with pytest.raises(ValueError):
        table.remove(0, bitmap)


def test_table_memory_is_small():
    """The paper's point: dynamic bitmaps stay tiny vs one per-disk bitmap."""
    table = BitmapTable(window_blocks=32, interval=10.0)
    for i in range(1000):  # a thousand active regions
        table.allocate(0, i * 10_000, now=0.0)
    # 65 bits ≈ 9 bytes per region → ~9 KB for 1000 regions.
    assert table.memory_bytes() < 16 * 1024


def test_table_validation():
    with pytest.raises(ValueError):
        BitmapTable(window_blocks=0, interval=1.0)
    with pytest.raises(ValueError):
        BitmapTable(window_blocks=8, interval=0.0)


@given(blocks=st.lists(st.integers(min_value=0, max_value=100_000),
                       min_size=1, max_size=50))
@settings(max_examples=40)
def test_property_find_returns_covering_bitmap(blocks):
    table = BitmapTable(window_blocks=16, interval=100.0)
    for block in blocks:
        found = table.find(0, block)
        if found is None:
            found = table.allocate(0, block, now=0.0)
        assert found.covers(block)
        found.set_range(block, 1, now=0.0)
