"""Tests for the ext3-like extent filesystem model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.filesystem import ExtentFilesystem
from repro.units import GiB, KiB, MiB


def make_fs(**kwargs):
    return ExtentFilesystem(capacity_bytes=10 * GiB, **kwargs)


def test_contiguous_file_is_one_extent():
    fs = make_fs()
    file = fs.create("a", 10 * MiB)
    assert len(file.extents) == 1
    assert file.extents[0].length == 10 * MiB


def test_files_land_in_distinct_block_groups():
    """The ext3 behaviour that scatters streams across the disk."""
    fs = make_fs(block_group_bytes=128 * MiB)
    first = fs.create("a", 1 * MiB)
    second = fs.create("b", 1 * MiB)
    gap = abs(second.extents[0].device_offset
              - first.extents[0].device_offset)
    assert gap >= 127 * MiB  # different 128 MB groups


def test_map_simple_range():
    fs = make_fs()
    fs.create("a", 10 * MiB)
    pieces = fs.map("a", 1 * MiB, 64 * KiB)
    assert len(pieces) == 1
    device_offset, length = pieces[0]
    assert length == 64 * KiB
    # Within the file's extent, shifted by the file offset.
    assert device_offset == fs.files["a"].extents[0].device_offset \
        + 1 * MiB


def test_fragmented_file_multiple_extents():
    fs = make_fs(fragment_every=1 * MiB)
    file = fs.create("frag", 4 * MiB)
    assert len(file.extents) == 4
    # Extents are in different groups: sequential file reads become
    # scattered device reads.
    offsets = [e.device_offset for e in file.extents]
    assert len({o // (128 * MiB) for o in offsets}) == 4


def test_map_across_extent_boundary():
    fs = make_fs(fragment_every=1 * MiB)
    fs.create("frag", 4 * MiB)
    pieces = fs.map("frag", 1 * MiB - 64 * KiB, 128 * KiB)
    assert len(pieces) == 2
    assert sum(length for _o, length in pieces) == 128 * KiB


def test_map_validation():
    fs = make_fs()
    fs.create("a", 1 * MiB)
    with pytest.raises(FileNotFoundError):
        fs.map("missing", 0, 4 * KiB)
    with pytest.raises(ValueError):
        fs.map("a", 0, 2 * MiB)  # beyond EOF
    with pytest.raises(ValueError):
        fs.map("a", -4096, 4 * KiB)


def test_create_validation():
    fs = make_fs()
    fs.create("a", 1 * MiB)
    with pytest.raises(ValueError):
        fs.create("a", 1 * MiB)  # duplicate
    with pytest.raises(ValueError):
        fs.create("b", 0)
    with pytest.raises(ValueError):
        fs.create("c", 1000)  # unaligned
    with pytest.raises(ValueError):
        fs.create("d", 256 * MiB)  # exceeds a block group, unfragmented


def test_filesystem_full():
    fs = ExtentFilesystem(capacity_bytes=256 * MiB,
                          block_group_bytes=128 * MiB)
    fs.create("a", 128 * MiB)
    fs.create("b", 128 * MiB)
    with pytest.raises(MemoryError):
        fs.create("c", 1 * MiB)


def test_constructor_validation():
    with pytest.raises(ValueError):
        ExtentFilesystem(capacity_bytes=64 * MiB,
                         block_group_bytes=128 * MiB)
    with pytest.raises(ValueError):
        ExtentFilesystem(capacity_bytes=GiB, block_group_bytes=512 * KiB)
    with pytest.raises(ValueError):
        ExtentFilesystem(capacity_bytes=GiB, fragment_every=1000)


@given(sizes=st.lists(st.integers(min_value=1, max_value=64),
                      min_size=1, max_size=30))
@settings(max_examples=40)
def test_property_extents_never_overlap(sizes):
    """No two allocations ever share device bytes."""
    fs = ExtentFilesystem(capacity_bytes=10 * GiB,
                          fragment_every=2 * MiB)
    allocated = []
    for index, chunks in enumerate(sizes):
        size = chunks * 64 * KiB
        try:
            file = fs.create(f"f{index}", size)
        except MemoryError:
            break
        for extent in file.extents:
            allocated.append((extent.device_offset,
                              extent.device_offset + extent.length))
    allocated.sort()
    for (a_start, a_end), (b_start, b_end) in zip(allocated,
                                                  allocated[1:]):
        assert a_end <= b_start


@given(offset_kib=st.integers(min_value=0, max_value=4000),
       size_kib=st.integers(min_value=1, max_value=96))
@settings(max_examples=40)
def test_property_map_conserves_bytes(offset_kib, size_kib):
    fs = ExtentFilesystem(capacity_bytes=10 * GiB,
                          fragment_every=1 * MiB)
    fs.create("f", 8 * MiB)
    offset = offset_kib * KiB
    size = size_kib * KiB
    if offset + size > 8 * MiB:
        return
    pieces = fs.map("f", offset, size)
    assert sum(length for _o, length in pieces) == size
    assert all(length > 0 for _o, length in pieces)


def test_file_read_through_cache_integration():
    """Reading a file through the buffer cache via the extent map."""
    from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
    from repro.disk.mechanics import RotationMode
    from repro.host import BlockLayer, BufferCache, make_scheduler
    from repro.sim import Simulator

    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(rotation_mode=RotationMode.EXPECTED))
    layer = BlockLayer(sim, drive, make_scheduler("noop"))
    cache = BufferCache(sim, layer, capacity_bytes=64 * MiB)
    fs = ExtentFilesystem(capacity_bytes=drive.capacity_bytes)
    fs.create("movie", 4 * MiB)
    read_bytes = [0]

    def reader(sim):
        offset = 0
        while offset < 4 * MiB:
            for device_offset, length in fs.map("movie", offset, 64 * KiB):
                yield cache.read(1, 0, device_offset, length)
                read_bytes[0] += length
            offset += 64 * KiB

    process = sim.process(reader(sim))
    sim.run_until_event(process, limit=30.0)
    assert read_bytes[0] == 4 * MiB
