"""Backend/step equivalence and free-list (pool) correctness.

The kernel's pending-event queue and untraced dispatch loop are
pluggable (:mod:`repro.sim.eventcore`): a compiled C core, a
pure-Python calendar queue, and the original ``heapq`` reference. Every
backend's ``run()`` batches same-timestamp events, dispatches sole
waiters directly and recycles provably-unreferenced events through
free-lists; :meth:`Simulator.step` is the readable per-event reference
with none of those fast paths. These tests pin *all available backends*
and ``step()`` to bit-identical observable behaviour on a workload that
exercises every event type — Timeout, bare Event, AllOf, AnyOf, Process
joins and interrupts — and pin the pools' safety contract: a user-held
reference to a processed event never observes reuse, and traced runs
never recycle at all.
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import _POOL_LIMIT
from repro.sim.eventcore import available_backends
from repro.sim.events import Event, Interrupt, Timeout

BACKENDS = available_backends()


# -- mixed workload --------------------------------------------------------

def _build_workload(sim, log, seed=0):
    """Spawn a deterministic tangle of processes that append to ``log``.

    Covers: zero and equal delays (same-instant batches), AllOf fan-in,
    AnyOf races, process joins, interrupts mid-sleep, and a failing
    process whose exception a watcher absorbs.
    """
    rng = random.Random(seed)

    def ticker(sim, ident, count):
        for tick in range(count):
            yield sim.timeout(rng.choice([0.0, 0.5, 1.0, 1.0, 2.5]))
            log.append(("tick", ident, tick, sim.now))

    def fanout(sim):
        children = [sim.timeout(delay, value=delay)
                    for delay in (1.0, 1.0, 3.0, 0.0)]
        results = yield sim.all_of(children)
        log.append(("allof", tuple(results.values()), sim.now))

    def racer(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(4.0, value="slow")
        first = yield sim.any_of([fast, slow])
        log.append(("anyof", tuple(first.values()), sim.now))
        yield slow  # drain the loser deterministically
        log.append(("anyof-late", sim.now))

    def sleeper(sim):
        try:
            yield sim.timeout(50.0)
            log.append(("overslept", sim.now))
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))
        yield sim.timeout(0.25)
        log.append(("sleeper-done", sim.now))

    def alarm(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("wake")
        log.append(("alarm", sim.now))

    def failer(sim):
        yield sim.timeout(1.5)
        raise RuntimeError("expected failure")

    def watcher(sim, target):
        try:
            yield target
            log.append(("watched-ok", sim.now))
        except RuntimeError as error:
            log.append(("watched-fail", str(error), sim.now))

    def joiner(sim, target):
        value = yield target
        log.append(("joined", value, sim.now))

    def quick(sim):
        yield sim.timeout(0.75)
        return "quick-value"

    for ident in range(3):
        sim.process(ticker(sim, ident, count=4))
    sim.process(fanout(sim))
    sim.process(racer(sim))
    target = sim.process(sleeper(sim))
    sim.process(alarm(sim, target))
    failed = sim.process(failer(sim))
    sim.process(watcher(sim, failed))
    sim.process(joiner(sim, sim.process(quick(sim))))


def _run_with_step(sim):
    while sim.queue_length:
        sim.step()
    return sim.now


class _StubTracer:
    """Records the exact kernel event stream: (now, type, name)."""

    def __init__(self):
        self.records = []

    def kernel(self, now, event):
        self.records.append((now, type(event).__name__, event.name))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_run_equals_step_on_mixed_workload(backend, seed):
    """run() and step() produce identical logs, clocks and sequences."""
    log_run, log_step = [], []
    sim_run = Simulator(backend=backend)
    sim_step = Simulator(backend=backend)
    _build_workload(sim_run, log_run, seed=seed)
    _build_workload(sim_step, log_step, seed=seed)

    end_run = sim_run.run()
    end_step = _run_with_step(sim_step)

    assert log_run == log_step
    assert end_run == end_step
    # Identical event counts were scheduled and consumed.
    assert sim_run._sequence == sim_step._sequence
    assert sim_run.queue_length == 0 and sim_step.queue_length == 0


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_backends_produce_identical_streams(seed):
    """Every backend yields the bit-identical log, clock and sequence."""
    results = {}
    for backend in BACKENDS:
        log = []
        sim = Simulator(backend=backend)
        _build_workload(sim, log, seed=seed)
        end = sim.run()
        results[backend] = (log, end, sim._sequence)
    reference = results["heapq"]
    for backend, got in results.items():
        assert got == reference, f"{backend} diverged from heapq"


@pytest.mark.parametrize("seed", [0, 3])
def test_traced_kernel_streams_identical_across_backends(seed):
    """The traced per-event kernel record stream is bit-identical."""
    streams = {}
    for backend in BACKENDS:
        tracer = _StubTracer()
        sim = Simulator(trace=tracer, backend=backend)
        _build_workload(sim, [], seed=seed)
        sim.run()
        streams[backend] = tracer.records
    reference = streams["heapq"]
    assert reference, "tracer saw no kernel records"
    for backend, got in streams.items():
        assert got == reference, f"{backend} trace diverged from heapq"


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_until_equals_step_prefix(backend):
    """run(until=t) consumes exactly the events step() would by t."""
    log_run, log_step = [], []
    sim_run = Simulator(backend=backend)
    sim_step = Simulator(backend=backend)
    _build_workload(sim_run, log_run)
    _build_workload(sim_step, log_step)

    horizon = 2.0
    sim_run.run(until=horizon)
    while sim_step.queue_length and sim_step.peek() <= horizon:
        sim_step.step()

    assert log_run == log_step
    # Resuming both to the end still agrees (pool reuse across the
    # boundary must not perturb anything).
    sim_run.run()
    _run_with_step(sim_step)
    assert log_run == log_step


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_equals_step_with_resources(backend):
    """Contention primitives ride the same fast paths identically."""
    from repro.sim.resources import Pipe, Resource, Store

    def _world(sim, log):
        disk = Resource(sim, capacity=2, name="disk")
        queue = Store(sim, capacity=4, name="queue")
        link = Pipe(sim, bandwidth=1e6, name="link")

        def producer(sim):
            for item in range(8):
                yield queue.put(item)
                yield sim.timeout(0.1)

        def consumer(sim, ident):
            for _ in range(4):
                item = yield queue.get()
                grant = disk.request()
                yield grant
                yield sim.process(link.transfer(32768))
                disk.release()
                log.append(("served", ident, item, round(sim.now, 9)))

        sim.process(producer(sim))
        sim.process(consumer(sim, "a"))
        sim.process(consumer(sim, "b"))

    log_run, log_step = [], []
    sim_run = Simulator(backend=backend)
    sim_step = Simulator(backend=backend)
    _world(sim_run, log_run)
    _world(sim_step, log_step)
    assert sim_run.run() == _run_with_step(sim_step)
    assert log_run == log_step


# -- pool correctness -------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_held_timeout_reference_never_observes_reuse(backend):
    """A processed Timeout the user still holds is never recycled."""
    sim = Simulator(backend=backend)
    held = sim.timeout(1.0, value="mine", name="held")

    def waiter(sim):
        value = yield held
        assert value == "mine"

    sim.process(waiter(sim))
    sim.run()
    assert held.processed and held.ok and held.value == "mine"
    assert held not in sim._timeout_pool

    # Churn enough timeouts to cycle the pool many times over.
    def churn(sim):
        for _ in range(200):
            yield sim.timeout(0.01)

    sim.process(churn(sim))
    sim.run()
    # The held object is untouched: same state, same value, still not
    # in any pool, and no new timeout is the same object.
    assert held.processed and held.ok and held.value == "mine"
    assert held.name == "held"  # reset-on-recycle never ran on it
    assert held not in sim._timeout_pool
    fresh = sim.timeout(0.5)
    assert fresh is not held


@pytest.mark.parametrize("backend", BACKENDS)
def test_recycling_actually_happens(backend):
    """The free-lists fill on an unheld-timeout workload (not dead code)."""
    sim = Simulator(backend=backend)

    def churn(sim):
        for _ in range(50):
            yield sim.timeout(0.001)

    sim.process(churn(sim))
    sim.run()
    assert sim._timeout_pool, "timeout free-list never filled"
    assert sim._event_pool, "event free-list never filled (bootstrap)"
    assert all(type(event) is Timeout for event in sim._timeout_pool)
    assert all(type(event) is Event for event in sim._event_pool)


@pytest.mark.parametrize("backend", BACKENDS)
def test_recycled_timeouts_are_clean_on_reuse(backend):
    """Pool hits come back with virgin state: no value, ok, no waiter."""
    sim = Simulator(backend=backend)

    def churn(sim):
        for _ in range(10):
            yield sim.timeout(0.001)

    sim.process(churn(sim))
    sim.run()
    assert sim._timeout_pool
    recycled = sim.timeout(2.0)
    assert recycled.triggered and not recycled.processed
    assert recycled._value is None and recycled._ok
    assert recycled._sole_waiter is None and not recycled.callbacks
    assert recycled.delay == 2.0

    pooled_event = sim.event("named")
    assert pooled_event.name == "named"
    assert not pooled_event.triggered
    assert pooled_event._sole_waiter is None and not pooled_event.callbacks


@pytest.mark.parametrize("backend", BACKENDS)
def test_pool_is_bounded(backend):
    """The free-lists never exceed _POOL_LIMIT entries."""
    sim = Simulator(backend=backend)

    def churn(sim, count):
        for _ in range(count):
            yield sim.timeout(0.0)

    for _ in range(8):
        sim.process(churn(sim, 400))
    sim.run()
    assert len(sim._timeout_pool) <= _POOL_LIMIT
    assert len(sim._event_pool) <= _POOL_LIMIT


@pytest.mark.parametrize("backend", BACKENDS)
def test_traced_runs_never_recycle(backend):
    """With a tracer attached, run() takes the reference path: no pools."""
    tracer = _StubTracer()
    sim = Simulator(trace=tracer, backend=backend)

    def churn(sim):
        for _ in range(20):
            yield sim.timeout(0.001)

    sim.process(churn(sim))
    sim.run()
    assert tracer.records, "tracer saw no kernel records"
    assert not sim._timeout_pool
    assert not sim._event_pool


@pytest.mark.parametrize("backend", BACKENDS)
def test_condition_events_never_enter_pools(backend):
    """AllOf/AnyOf/Process instances are structurally non-poolable."""
    sim = Simulator(backend=backend)

    def fan(sim):
        yield sim.all_of([sim.timeout(0.1), sim.timeout(0.2)])
        yield sim.any_of([sim.timeout(0.1), sim.timeout(0.2)])

    sim.process(fan(sim))
    sim.run()
    assert all(type(event) is Timeout for event in sim._timeout_pool)
    assert all(type(event) is Event for event in sim._event_pool)
