"""run() vs step() equivalence and free-list (pool) correctness.

The kernel's ``run()`` loop batches same-timestamp events, dispatches
sole waiters directly and recycles provably-unreferenced events through
free-lists; :meth:`Simulator.step` is the readable per-event reference
with none of those fast paths. These tests pin the two to identical
observable behaviour on a workload that exercises every event type —
Timeout, bare Event, AllOf, AnyOf, Process joins and interrupts — and
pin the pool's safety contract: a user-held reference to a processed
event never observes reuse, and traced runs never recycle at all.
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import _POOL_LIMIT
from repro.sim.events import Event, Interrupt, Timeout


# -- mixed workload --------------------------------------------------------

def _build_workload(sim, log, seed=0):
    """Spawn a deterministic tangle of processes that append to ``log``.

    Covers: zero and equal delays (same-instant batches), AllOf fan-in,
    AnyOf races, process joins, interrupts mid-sleep, and a failing
    process whose exception a watcher absorbs.
    """
    rng = random.Random(seed)

    def ticker(sim, ident, count):
        for tick in range(count):
            yield sim.timeout(rng.choice([0.0, 0.5, 1.0, 1.0, 2.5]))
            log.append(("tick", ident, tick, sim.now))

    def fanout(sim):
        children = [sim.timeout(delay, value=delay)
                    for delay in (1.0, 1.0, 3.0, 0.0)]
        results = yield sim.all_of(children)
        log.append(("allof", tuple(results.values()), sim.now))

    def racer(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(4.0, value="slow")
        first = yield sim.any_of([fast, slow])
        log.append(("anyof", tuple(first.values()), sim.now))
        yield slow  # drain the loser deterministically
        log.append(("anyof-late", sim.now))

    def sleeper(sim):
        try:
            yield sim.timeout(50.0)
            log.append(("overslept", sim.now))
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))
        yield sim.timeout(0.25)
        log.append(("sleeper-done", sim.now))

    def alarm(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("wake")
        log.append(("alarm", sim.now))

    def failer(sim):
        yield sim.timeout(1.5)
        raise RuntimeError("expected failure")

    def watcher(sim, target):
        try:
            yield target
            log.append(("watched-ok", sim.now))
        except RuntimeError as error:
            log.append(("watched-fail", str(error), sim.now))

    def joiner(sim, target):
        value = yield target
        log.append(("joined", value, sim.now))

    def quick(sim):
        yield sim.timeout(0.75)
        return "quick-value"

    for ident in range(3):
        sim.process(ticker(sim, ident, count=4))
    sim.process(fanout(sim))
    sim.process(racer(sim))
    target = sim.process(sleeper(sim))
    sim.process(alarm(sim, target))
    failed = sim.process(failer(sim))
    sim.process(watcher(sim, failed))
    sim.process(joiner(sim, sim.process(quick(sim))))


def _run_with_step(sim):
    while sim._heap:
        sim.step()
    return sim.now


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_run_equals_step_on_mixed_workload(seed):
    """run() and step() produce identical logs, clocks and sequences."""
    log_run, log_step = [], []
    sim_run, sim_step = Simulator(), Simulator()
    _build_workload(sim_run, log_run, seed=seed)
    _build_workload(sim_step, log_step, seed=seed)

    end_run = sim_run.run()
    end_step = _run_with_step(sim_step)

    assert log_run == log_step
    assert end_run == end_step
    # Identical event counts were scheduled and consumed.
    assert sim_run._sequence == sim_step._sequence
    assert not sim_run._heap and not sim_step._heap


def test_run_until_equals_step_prefix():
    """run(until=t) consumes exactly the events step() would by t."""
    log_run, log_step = [], []
    sim_run, sim_step = Simulator(), Simulator()
    _build_workload(sim_run, log_run)
    _build_workload(sim_step, log_step)

    horizon = 2.0
    sim_run.run(until=horizon)
    while sim_step._heap and sim_step._heap[0][0] <= horizon:
        sim_step.step()

    assert log_run == log_step
    # Resuming both to the end still agrees (pool reuse across the
    # boundary must not perturb anything).
    sim_run.run()
    _run_with_step(sim_step)
    assert log_run == log_step


def test_run_equals_step_with_resources():
    """Contention primitives ride the same fast paths identically."""
    from repro.sim.resources import Pipe, Resource, Store

    def _world(sim, log):
        disk = Resource(sim, capacity=2, name="disk")
        queue = Store(sim, capacity=4, name="queue")
        link = Pipe(sim, bandwidth=1e6, name="link")

        def producer(sim):
            for item in range(8):
                yield queue.put(item)
                yield sim.timeout(0.1)

        def consumer(sim, ident):
            for _ in range(4):
                item = yield queue.get()
                grant = disk.request()
                yield grant
                yield sim.process(link.transfer(32768))
                disk.release()
                log.append(("served", ident, item, round(sim.now, 9)))

        sim.process(producer(sim))
        sim.process(consumer(sim, "a"))
        sim.process(consumer(sim, "b"))

    log_run, log_step = [], []
    sim_run, sim_step = Simulator(), Simulator()
    _world(sim_run, log_run)
    _world(sim_step, log_step)
    assert sim_run.run() == _run_with_step(sim_step)
    assert log_run == log_step


# -- pool correctness -------------------------------------------------------

def test_held_timeout_reference_never_observes_reuse():
    """A processed Timeout the user still holds is never recycled."""
    sim = Simulator()
    held = sim.timeout(1.0, value="mine", name="held")

    def waiter(sim):
        value = yield held
        assert value == "mine"

    sim.process(waiter(sim))
    sim.run()
    assert held.processed and held.ok and held.value == "mine"
    assert held not in sim._timeout_pool

    # Churn enough timeouts to cycle the pool many times over.
    def churn(sim):
        for _ in range(200):
            yield sim.timeout(0.01)

    sim.process(churn(sim))
    sim.run()
    # The held object is untouched: same state, same value, still not
    # in any pool, and no new timeout is the same object.
    assert held.processed and held.ok and held.value == "mine"
    assert held.name == "held"  # reset-on-recycle never ran on it
    assert held not in sim._timeout_pool
    fresh = sim.timeout(0.5)
    assert fresh is not held


def test_recycling_actually_happens():
    """The free-lists fill on an unheld-timeout workload (not dead code)."""
    sim = Simulator()

    def churn(sim):
        for _ in range(50):
            yield sim.timeout(0.001)

    sim.process(churn(sim))
    sim.run()
    assert sim._timeout_pool, "timeout free-list never filled"
    assert sim._event_pool, "event free-list never filled (bootstrap)"
    assert all(type(event) is Timeout for event in sim._timeout_pool)
    assert all(type(event) is Event for event in sim._event_pool)


def test_recycled_timeouts_are_clean_on_reuse():
    """Pool hits come back with virgin state: no value, ok, no waiter."""
    sim = Simulator()

    def churn(sim):
        for _ in range(10):
            yield sim.timeout(0.001)

    sim.process(churn(sim))
    sim.run()
    assert sim._timeout_pool
    recycled = sim.timeout(2.0)
    assert recycled.triggered and not recycled.processed
    assert recycled._value is None and recycled._ok
    assert recycled._sole_waiter is None and not recycled.callbacks
    assert recycled.delay == 2.0

    pooled_event = sim.event("named")
    assert pooled_event.name == "named"
    assert not pooled_event.triggered
    assert pooled_event._sole_waiter is None and not pooled_event.callbacks


def test_pool_is_bounded():
    """The free-lists never exceed _POOL_LIMIT entries."""
    sim = Simulator()

    def churn(sim, count):
        for _ in range(count):
            yield sim.timeout(0.0)

    for _ in range(8):
        sim.process(churn(sim, 400))
    sim.run()
    assert len(sim._timeout_pool) <= _POOL_LIMIT
    assert len(sim._event_pool) <= _POOL_LIMIT


def test_traced_runs_never_recycle():
    """With a tracer attached, run() takes the reference path: no pools."""

    class StubTracer:
        def __init__(self):
            self.records = []

        def kernel(self, now, event):
            self.records.append((now, type(event).__name__))

    tracer = StubTracer()
    sim = Simulator(trace=tracer)

    def churn(sim):
        for _ in range(20):
            yield sim.timeout(0.001)

    sim.process(churn(sim))
    sim.run()
    assert tracer.records, "tracer saw no kernel records"
    assert not sim._timeout_pool
    assert not sim._event_pool


def test_condition_events_never_enter_pools():
    """AllOf/AnyOf/Process instances are structurally non-poolable."""
    sim = Simulator()

    def fan(sim):
        yield sim.all_of([sim.timeout(0.1), sim.timeout(0.2)])
        yield sim.any_of([sim.timeout(0.1), sim.timeout(0.2)])

    sim.process(fan(sim))
    sim.run()
    assert all(type(event) is Timeout for event in sim._timeout_pool)
    assert all(type(event) is Event for event in sim._event_pool)
