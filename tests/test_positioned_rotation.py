"""Tests for POSITIONED rotation: angular-position-accurate latency."""

import pytest

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import Mechanics, RotationMode, SeekModel
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB, MS, MiB


def make_mechanics():
    geo = DiskGeometry(heads=1, zones=[(100, 1000)])
    seek = SeekModel(0.8 * MS, 5.0 * MS, geo.cylinders)
    return Mechanics(geo, rpm=6000.0, seek_model=seek,
                     rotation_mode=RotationMode.POSITIONED)


def test_sector_under_head_is_free():
    mech = make_mechanics()
    # At t=0 the head is at angle 0; sector 0 is at angle 0.
    assert mech.rotational_latency(now=0.0, target_lba=0) == pytest.approx(0.0)


def test_sector_just_passed_costs_full_rotation():
    mech = make_mechanics()
    revolution = mech.rotation_time  # 10 ms at 6000 RPM
    # Slightly after t=0 the head has passed sector 0: wait ~a whole turn.
    latency = mech.rotational_latency(now=1e-6, target_lba=0)
    assert latency == pytest.approx(revolution, rel=1e-3)


def test_sector_ahead_costs_its_angle():
    mech = make_mechanics()
    # Sector 250 of a 1000-sector track sits a quarter turn ahead.
    latency = mech.rotational_latency(now=0.0, target_lba=250)
    assert latency == pytest.approx(mech.rotation_time / 4)


def test_latency_bounded_by_one_rotation():
    mech = make_mechanics()
    for now in (0.0, 0.0013, 0.0071, 1.2345):
        for lba in (0, 123, 999, 50_000):
            latency = mech.rotational_latency(now=now, target_lba=lba)
            assert 0.0 <= latency < mech.rotation_time + 1e-12


def test_positioned_requires_context():
    mech = make_mechanics()
    with pytest.raises(ValueError):
        mech.rotational_latency()


def test_other_modes_ignore_context():
    geo = DiskGeometry(heads=1, zones=[(100, 1000)])
    seek = SeekModel(0.8 * MS, 5.0 * MS, geo.cylinders)
    mech = Mechanics(geo, rpm=6000.0, seek_model=seek,
                     rotation_mode=RotationMode.EXPECTED)
    assert mech.rotational_latency() == pytest.approx(
        mech.rotation_time / 2)


def test_drive_runs_deterministically_in_positioned_mode():
    def run_once():
        sim = Simulator()
        drive = DiskDrive(sim, DISKSIM_GENERIC, config=DriveConfig(
            rotation_mode=RotationMode.POSITIONED))
        latencies = []

        def client(sim):
            for index in range(8):
                offset = index * 500 * MiB
                offset -= offset % (64 * KiB)
                event = drive.submit(IORequest(
                    kind=IOKind.READ, disk_id=0, offset=offset,
                    size=64 * KiB))
                request = yield event
                latencies.append(request.latency)

        process = sim.process(client(sim))
        sim.run_until_event(process)
        return latencies

    first, second = run_once(), run_once()
    assert first == second  # fully deterministic, no RNG involved
    assert all(lat > 0 for lat in first)


def test_positioned_sequential_stream_still_fast():
    """Contiguity short-circuits rotation in every mode."""
    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC, config=DriveConfig(
        rotation_mode=RotationMode.POSITIONED))
    done = {}

    def client(sim):
        offset = 0
        while offset < 16 * MiB:
            yield drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                         offset=offset, size=64 * KiB))
            offset += 64 * KiB
        done["t"] = sim.now

    sim.process(client(sim))
    sim.run()
    rate = 16 * MiB / done["t"] / MiB
    assert rate > 40  # near media rate, like the other modes
