"""Tests for the closed-form model, including sim-vs-analytic
cross-checks — the guard against silent timing regressions."""

import pytest

from repro.analysis.analytic import AnalyticDiskModel
from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet, uniform_streams


@pytest.fixture(scope="module")
def model():
    return AnalyticDiskModel(WD800JD)


def test_single_stream_is_media_rate(model):
    prediction = model.interleaved_throughput(1, 64 * KiB)
    assert prediction.throughput == pytest.approx(60 * MiB, rel=0.02)
    assert prediction.seek_time == 0.0


def test_throughput_increases_with_request_size(model):
    small = model.interleaved_throughput(30, 64 * KiB)
    big = model.interleaved_throughput(30, 8 * MiB)
    assert big.throughput > 5 * small.throughput


def test_more_streams_shorter_seeks(model):
    few = model.interleaved_throughput(10, 1 * MiB)
    many = model.interleaved_throughput(100, 1 * MiB)
    assert many.seek_time < few.seek_time


def test_mean_media_rate_between_zones(model):
    assert 35 * MiB < model.mean_media_rate < 60 * MiB


def test_read_ahead_for_utilisation_matches_paper(model):
    """~90% utilisation at 100 streams needs single-digit-MB read-ahead
    — the paper's 8 MB finding."""
    needed = model.read_ahead_for_utilisation(100, 0.85)
    assert 2 * MiB <= needed <= 16 * MiB


def test_validation(model):
    with pytest.raises(ValueError):
        model.interleaved_throughput(0, 64 * KiB)
    with pytest.raises(ValueError):
        model.interleaved_throughput(10, 0)
    with pytest.raises(ValueError):
        model.read_ahead_for_utilisation(10, 1.5)
    with pytest.raises(ValueError):
        model.stream_spacing_cylinders(0)


# ---------------------------------------------------------------------------
# Simulation vs analytic cross-checks
# ---------------------------------------------------------------------------

def _simulated_server_throughput(num_streams, read_ahead):
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=read_ahead, dispatch_width=num_streams,
        requests_per_residency=1,
        memory_budget=num_streams * read_ahead))
    specs = uniform_streams(num_streams, node.disk_ids,
                            node.capacity_bytes, request_size=64 * KiB)
    report = ClientFleet(sim, server, specs).run(
        duration=6.0, warmup=1.0, settle_requests=5)
    return report.throughput


@pytest.mark.parametrize("num_streams,read_ahead", [
    (30, 1 * MiB),
    (30, 8 * MiB),
    (100, 2 * MiB),
])
def test_simulation_matches_analytic_band(model, num_streams, read_ahead):
    """The full stack lands within ±40% of the closed form.

    The analytic model ignores command/bus overheads, drive idle
    prefetch, LOOK reordering, and host costs, so a generous band is
    correct; a regression that doubles or halves throughput still trips
    it.
    """
    predicted = model.interleaved_throughput(num_streams,
                                             read_ahead).throughput
    simulated = _simulated_server_throughput(num_streams, read_ahead)
    assert 0.6 * predicted < simulated < 1.4 * predicted
