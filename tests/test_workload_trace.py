"""Tests for trace recording and replay."""

import io

import pytest

from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import (
    StreamSpec,
    TraceRecordEntry,
    TraceReplayer,
    load_trace,
    record_fleet_trace,
    save_trace,
)


def entry(time=0.0, offset=0, size=64 * KiB, stream=1,
          kind=IOKind.READ, disk=0):
    return TraceRecordEntry(time=time, kind=kind, disk_id=disk,
                            offset=offset, size=size, stream_id=stream)


def test_save_load_roundtrip():
    entries = [entry(0.0, 0), entry(0.5, 64 * KiB),
               entry(1.0, 0, kind=IOKind.WRITE, stream=None)]
    buffer = io.StringIO()
    assert save_trace(entries, buffer) == 3
    buffer.seek(0)
    loaded = load_trace(buffer)
    assert loaded == sorted(entries, key=lambda e: e.time)


def test_load_skips_comments_and_sorts():
    text = ("# a comment\n"
            "1.0,read,0,65536,65536,2\n"
            "0.5,read,0,0,65536,1\n")
    loaded = load_trace(io.StringIO(text))
    assert [e.time for e in loaded] == [0.5, 1.0]
    assert loaded[0].stream_id == 1


def test_load_rejects_malformed_rows():
    with pytest.raises(ValueError):
        load_trace(io.StringIO("1.0,read,0\n"))


def test_record_fleet_trace_from_specs():
    specs = [StreamSpec(stream_id=1, disk_id=0, start_offset=0,
                        request_size=64 * KiB, think_time=0.1),
             StreamSpec(stream_id=2, disk_id=1,
                        start_offset=1 * MiB, request_size=64 * KiB)]
    entries = record_fleet_trace(specs, limit_per_stream=3)
    assert len(entries) == 6
    stream_one = [e for e in entries if e.stream_id == 1]
    assert [e.offset for e in stream_one] == [0, 64 * KiB, 128 * KiB]
    assert [e.time for e in stream_one] == [0.0, 0.1, 0.2]
    with pytest.raises(ValueError):
        record_fleet_trace(specs, limit_per_stream=0)


def make_device(sim):
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    return node


def test_open_loop_replay_issues_at_recorded_times():
    sim = Simulator()
    device = make_device(sim)
    entries = [entry(0.0, 0), entry(0.5, 500 * MiB - 500 * MiB % (64 * KiB))]
    replayer = TraceReplayer(sim, device, entries, open_loop=True)
    done = replayer.start()
    sim.run_until_event(done, limit=30.0)
    assert replayer.completed == 2
    assert replayer.completed_bytes == 128 * KiB
    assert replayer.latency.count == 2
    # The second request could not complete before its 0.5 s issue time.
    assert sim.now > 0.5


def test_closed_loop_replay_respects_stream_order():
    sim = Simulator()
    device = make_device(sim)
    entries = [entry(0.0, i * 64 * KiB, stream=1) for i in range(8)]
    replayer = TraceReplayer(sim, device, entries, open_loop=False)
    done = replayer.start()
    sim.run_until_event(done, limit=30.0)
    assert replayer.completed == 8


def test_replay_counts_device_errors():
    class AlwaysFails:
        capacity_bytes = 10**12

        def __init__(self, sim):
            self.sim = sim

        def submit(self, request):
            event = self.sim.event()
            event.fail(IOError("nope"))
            return event

    sim = Simulator()
    replayer = TraceReplayer(sim, AlwaysFails(sim), [entry()],
                             open_loop=True)
    done = replayer.start()
    sim.run_until_event(done, limit=5.0)
    assert replayer.errors == 1
    assert replayer.completed == 0


def test_replay_throughput_accounting():
    sim = Simulator()
    device = make_device(sim)
    entries = [entry(0.0, i * 64 * KiB) for i in range(4)]
    replayer = TraceReplayer(sim, device, entries, open_loop=False)
    done = replayer.start()
    sim.run_until_event(done, limit=30.0)
    assert replayer.throughput(sim.now) == pytest.approx(
        4 * 64 * KiB / sim.now)
    assert replayer.throughput(0.0) == 0.0
