"""Shared test configuration.

Isolates the sweep result cache: experiment runs during tests must never
read from or write into the developer's real ``~/.cache/repro-sweeps``.
Each test session gets a private cache directory, so cache-dependent
tests (warm-hit short-circuits) still exercise the real cache code.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_sweep_cache(tmp_path_factory):
    """Point REPRO_SWEEP_CACHE at a session-private directory."""
    import os
    cache_dir = tmp_path_factory.mktemp("repro-sweeps")
    previous = os.environ.get("REPRO_SWEEP_CACHE")
    os.environ["REPRO_SWEEP_CACHE"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_SWEEP_CACHE", None)
    else:
        os.environ["REPRO_SWEEP_CACHE"] = previous
