"""Unit tests for Resource, Store, and Pipe primitives."""

import pytest

from repro.sim import Pipe, Resource, Simulator, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    g1, g2, g3 = res.request(), res.request(), res.request()
    sim.run()
    assert g1.processed and g2.processed
    assert not g3.processed
    assert res.in_use == 2
    assert res.queued == 1


def test_resource_release_wakes_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim, name, hold):
        grant = res.request()
        yield grant
        order.append(("acquire", name, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(holder(sim, "a", 2.0))
    sim.process(holder(sim, "b", 1.0))
    sim.process(holder(sim, "c", 1.0))
    sim.run()
    assert order == [
        ("acquire", "a", 0.0),
        ("acquire", "b", 2.0),
        ("acquire", "c", 3.0),
    ]


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        for item in (1, 2, 3):
            yield store.put(item)

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(5.0)
        yield store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [(5.0, "late")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer(sim):
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer(sim):
        yield sim.timeout(3.0)
        item = yield store.get()
        events.append((f"got-{item}", sim.now))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 3.0) in events  # admitted only after the get


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    sim.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put(10)
    store.put(20)
    sim.run()
    assert len(store) == 2
    assert store.items == (10, 20)


# ---------------------------------------------------------------------------
# Pipe
# ---------------------------------------------------------------------------

def test_pipe_transfer_time():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0)
    assert pipe.transfer_time(200) == pytest.approx(2.0)


def test_pipe_transfer_overhead():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0, per_transfer_overhead=0.5)
    assert pipe.transfer_time(100) == pytest.approx(1.5)


def test_pipe_serialises_transfers():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0)
    done = []

    def mover(sim, name, nbytes):
        yield from pipe.transfer(nbytes)
        done.append((name, sim.now))

    sim.process(mover(sim, "first", 100))
    sim.process(mover(sim, "second", 100))
    sim.run()
    assert done == [("first", 1.0), ("second", 2.0)]
    assert pipe.bytes_moved == 200
    assert pipe.transfers == 2


def test_pipe_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        Pipe(sim, bandwidth=0)
    with pytest.raises(ValueError):
        Pipe(sim, bandwidth=10, per_transfer_overhead=-1)
    pipe = Pipe(sim, bandwidth=10)
    with pytest.raises(ValueError):
        pipe.transfer_time(-5)


def test_pipe_busy_time_tracks_utilisation():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0)

    def mover(sim):
        yield from pipe.transfer(50)

    sim.process(mover(sim))
    sim.run()
    assert pipe.busy_time == pytest.approx(0.5)
    assert pipe.utilization_to(1.0) == pytest.approx(0.5)
