"""Tests for sequential-stream classification and routing."""

import pytest

from repro.core import SequentialClassifier, ServerParams
from repro.io import IOKind, IORequest
from repro.units import KiB, MiB


def params(**kwargs):
    defaults = dict(classifier_block=64 * KiB, classifier_threshold=3,
                    classifier_window_blocks=32)
    defaults.update(kwargs)
    return ServerParams(**defaults)


def read(offset, size=64 * KiB, disk=0, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=disk, offset=offset,
                     size=size, stream_id=stream)


def write(offset, size=64 * KiB):
    return IORequest(kind=IOKind.WRITE, disk_id=0, offset=offset, size=size)


def sequential_run(classifier, start, count, size=64 * KiB, disk=0):
    """Feed `count` back-to-back reads; return list of routed streams."""
    results = []
    offset = start
    for i in range(count):
        results.append(classifier.route(read(offset, size, disk=disk),
                                        now=float(i)))
        offset += size
    return results


def test_detection_after_threshold_distinct_blocks():
    classifier = SequentialClassifier(params())
    routed = sequential_run(classifier, 0, 5)
    # First two: unknown (popcount 1, 2). Third: threshold hit → stream.
    assert routed[0] is None
    assert routed[1] is None
    assert routed[2] is not None
    # Subsequent requests route to the same stream.
    assert routed[3] is routed[2]
    assert routed[4] is routed[2]
    assert classifier.detected == 1


def test_detected_stream_starts_at_request_end():
    classifier = SequentialClassifier(params())
    routed = sequential_run(classifier, 0, 3)
    stream = routed[2]
    assert stream.client_next == 3 * 64 * KiB
    assert stream.fetch_next == 3 * 64 * KiB


def test_repeated_same_block_never_detects():
    """Paper: multiple requests to the same block are ignored."""
    classifier = SequentialClassifier(params())
    for i in range(10):
        assert classifier.route(read(0), now=float(i)) is None
    assert classifier.detected == 0


def test_out_of_order_requests_go_direct():
    classifier = SequentialClassifier(params())
    sequential_run(classifier, 0, 3)  # stream detected at 192K
    # A backwards request does not match the stream.
    assert classifier.route(read(64 * KiB), now=10.0) is None


def test_writes_always_direct():
    classifier = SequentialClassifier(params())
    for i in range(5):
        assert classifier.route(write(i * 64 * KiB), now=float(i)) is None
    assert classifier.detected == 0


def test_streams_on_different_disks_independent():
    classifier = SequentialClassifier(params())
    a = sequential_run(classifier, 0, 4, disk=0)[-1]
    b = sequential_run(classifier, 0, 4, disk=1)[-1]
    assert a is not None and b is not None
    assert a is not b
    assert a.disk_id == 0 and b.disk_id == 1


def test_far_apart_streams_on_same_disk_independent():
    classifier = SequentialClassifier(params())
    a = sequential_run(classifier, 0, 4)[-1]
    b = sequential_run(classifier, 10_000 * MiB, 4)[-1]
    assert a is not None and b is not None and a is not b


def test_random_workload_never_detected():
    from repro.workload import random_requests
    classifier = SequentialClassifier(params())
    for i, request in enumerate(random_requests(
            300, [0], capacity=80 * 10**9, request_size=64 * KiB, seed=5)):
        classifier.route(request, now=float(i))
    assert classifier.detected == 0


def test_small_requests_need_more_to_detect():
    """4K requests set one 64K-block bit each 16 requests."""
    classifier = SequentialClassifier(params())
    offset = 0
    detected_at = None
    for i in range(64):
        if classifier.route(read(offset, 4 * KiB), now=float(i)):
            detected_at = i
            break
        offset += 4 * KiB
    # Needs 3 distinct 64K blocks → detection in the 33rd request region.
    assert detected_at is not None
    assert detected_at >= 32


def test_gap_tolerance_matches_near_sequential():
    classifier = SequentialClassifier(params(gap_tolerance=128 * KiB))
    stream = sequential_run(classifier, 0, 3)[-1]
    # Skip 64K ahead of expected: still matches with tolerance.
    skipped = read(stream.client_next + 64 * KiB)
    assert classifier.route(skipped, now=5.0) is stream


def test_no_gap_tolerance_rejects_skips():
    classifier = SequentialClassifier(params(gap_tolerance=0))
    stream = sequential_run(classifier, 0, 3)[-1]
    skipped = read(stream.client_next + 64 * KiB)
    assert classifier.route(skipped, now=5.0) is not stream


def test_drop_stream_unroutes():
    classifier = SequentialClassifier(params())
    stream = sequential_run(classifier, 0, 3)[-1]
    classifier.drop_stream(stream)
    assert classifier.live_streams == 0
    follow_on = read(stream.client_next)
    assert classifier.route(follow_on, now=5.0) is None


def test_bitmap_removed_after_detection():
    classifier = SequentialClassifier(params())
    sequential_run(classifier, 0, 3)
    assert classifier.bitmaps.live_count == 0


def test_spanning_request_sets_multiple_bits():
    """One 192K request spans 3 blocks and detects immediately."""
    classifier = SequentialClassifier(params())
    stream = classifier.route(read(0, 192 * KiB), now=0.0)
    assert stream is not None


def test_interval_expiry_resets_detection():
    classifier = SequentialClassifier(params(classifier_interval=1.0))
    classifier.route(read(0), now=0.0)
    classifier.route(read(64 * KiB), now=0.1)
    classifier.expire_bitmaps(now=5.0)  # bits aged out
    # The third request alone is not enough any more.
    assert classifier.route(read(128 * KiB), now=5.0) is None
