"""Unit tests for the fault plan and the injecting device wrappers."""

import math

import pytest

from repro.disk import WD800JD
from repro.faults import (
    DiskDeadError,
    DiskDeath,
    FaultPlan,
    FaultyDevice,
    MediaError,
    MediaFault,
    RandomFaults,
    StragglerDevice,
    StragglerProfile,
    TransientMediaError,
    is_transient,
)
from repro.faults.plan import _hash01
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet, uniform_streams


def read(offset, size=64 * KiB, disk=0):
    return IORequest(kind=IOKind.READ, disk_id=disk, offset=offset,
                     size=size, stream_id=1)


# -- hash determinism ------------------------------------------------------

def test_hash01_stable_and_uniformish():
    assert _hash01(0, 1, 2, 3) == _hash01(0, 1, 2, 3)
    assert _hash01(0, 1, 2, 3) != _hash01(1, 1, 2, 3)
    samples = [_hash01(0, i) for i in range(2000)]
    assert all(0.0 <= s < 1.0 for s in samples)
    assert 0.45 < sum(samples) / len(samples) < 0.55


# -- plan evaluation -------------------------------------------------------

def test_media_fault_permanent_always_fails():
    plan = FaultPlan(media=(MediaFault(disk_id=0, offset=0,
                                       size=64 * KiB),))
    for attempt in range(5):
        outcome = plan.evaluate(read(0), now=0.0, attempt=attempt)
        assert isinstance(outcome.error, MediaError)
        assert not is_transient(outcome.error)
    # A request outside the defective range passes.
    assert plan.evaluate(read(1 * MiB), now=0.0).clean


def test_media_fault_transient_recovers_after_n_attempts():
    plan = FaultPlan(media=(MediaFault(disk_id=0, offset=0, size=64 * KiB,
                                       transient=True, recover_after=2),))
    assert isinstance(plan.evaluate(read(0), 0.0, attempt=0).error,
                      TransientMediaError)
    assert isinstance(plan.evaluate(read(0), 0.0, attempt=1).error,
                      TransientMediaError)
    assert plan.evaluate(read(0), 0.0, attempt=2).clean


def test_disk_death_dominates_and_respects_time():
    plan = FaultPlan(deaths=(DiskDeath(disk_id=0, at=5.0),),
                     media=(MediaFault(disk_id=0, offset=0,
                                       size=64 * KiB, transient=True),))
    assert isinstance(plan.evaluate(read(0), now=0.0).error,
                      TransientMediaError)
    assert isinstance(plan.evaluate(read(0), now=5.0).error,
                      DiskDeadError)
    assert plan.death_time(0) == 5.0
    assert plan.death_time(1) == math.inf
    assert FaultPlan(deaths=(DiskDeath(0, at=0.0),)) \
        .dead_disks_at_start == (0,)


def test_random_faults_deterministic_and_rate_accurate():
    plan = FaultPlan(seed=3, random_faults=(RandomFaults(
        probability=0.25),))
    fates = [plan.evaluate(read(i * 64 * KiB), 0.0).error is not None
             for i in range(2000)]
    again = [plan.evaluate(read(i * 64 * KiB), 0.0).error is not None
             for i in range(2000)]
    assert fates == again  # identical under re-evaluation
    rate = sum(fates) / len(fates)
    assert 0.20 < rate < 0.30
    # A retry is a fresh coin flip, not a guaranteed repeat.
    first_failing = fates.index(True)
    request = read(first_failing * 64 * KiB)
    retries = [plan.evaluate(request, 0.0, attempt=a).error is not None
               for a in range(1, 40)]
    assert not all(retries)


def test_straggler_profile_windows_and_composition():
    plan = FaultPlan(stragglers=(
        StragglerProfile(slowdown=2.0, start=1.0, end=3.0),
        StragglerProfile(slowdown=3.0, disk_id=1, extra_s=0.5),
    ))
    assert plan.evaluate(read(0), now=0.0).clean  # before the window
    outcome = plan.evaluate(read(0), now=2.0)
    assert outcome.slowdown == 2.0 and outcome.extra_s == 0.0
    both = plan.evaluate(read(0, disk=1), now=2.0)
    assert both.slowdown == 6.0 and both.extra_s == 0.5
    assert plan.evaluate(read(0), now=3.0).clean  # window closed


def test_plan_validation():
    with pytest.raises(ValueError):
        RandomFaults(probability=1.5)
    with pytest.raises(ValueError):
        StragglerProfile(slowdown=0.5)
    assert FaultPlan().empty
    assert not FaultPlan(random_faults=(RandomFaults(0.1),)).empty


# -- the wrapper device ----------------------------------------------------

def _node(sim, seed=1):
    return build_node(sim, base_topology(disk_spec=WD800JD, seed=seed))


def _run_fleet(wrap=None, seed=1):
    sim = Simulator()
    node = _node(sim, seed=seed)
    device = wrap(sim, node) if wrap else node
    specs = uniform_streams(2, node.disk_ids, node.capacity_bytes,
                            request_size=64 * KiB,
                            total_bytes=512 * KiB)
    fleet = ClientFleet(sim, device, specs)
    report = fleet.run()
    return report, fleet


def test_empty_plan_is_zero_perturbation():
    """Wrapping with a no-fault FaultyDevice is bit-identical."""
    bare, bare_fleet = _run_fleet()
    wrapped, wrapped_fleet = _run_fleet(
        lambda sim, node: FaultyDevice(sim, node, FaultPlan()))
    assert bare.total_bytes == wrapped.total_bytes
    assert bare.elapsed == wrapped.elapsed  # exact ==, not approx
    assert [c.finished_at for c in bare_fleet.clients] == \
        [c.finished_at for c in wrapped_fleet.clients]


def test_kill_disk_runtime_overlay():
    sim = Simulator()
    faulty = FaultyDevice(sim, _node(sim), FaultPlan())
    assert faulty.dead_disks() == ()
    event = faulty.submit(read(0))
    sim.run_until_event(event, limit=5.0)
    faulty.kill_disk(0)
    assert faulty.dead_disks() == (0,)
    dead = faulty.submit(read(64 * KiB))
    with pytest.raises(DiskDeadError):
        sim.run_until_event(dead, limit=5.0)
    assert faulty.failures == 1


def test_straggler_device_inflates_latency():
    def timed(factory):
        sim = Simulator()
        node = _node(sim)
        device = factory(sim, node)
        event = device.submit(read(0))
        sim.run_until_event(event, limit=10.0)
        return sim.now

    base = timed(lambda sim, node: node)
    slowed = timed(lambda sim, node: StragglerDevice(sim, node,
                                                     slowdown=3.0))
    assert slowed == pytest.approx(3.0 * base, rel=1e-6)


def test_wrapper_delegates_layer_surfaces():
    sim = Simulator()
    node = _node(sim)
    faulty = FaultyDevice(sim, node, FaultPlan())
    assert faulty.disk_ids == node.disk_ids
    assert faulty.capacity_bytes == node.capacity_bytes
