"""Property tests: completion conservation through the stack.

Invariant: every submitted request completes exactly once (or fails
explicitly) — no lost requests, no double completions, regardless of the
mix of sequential, near-sequential, and random traffic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ServerParams, StreamServer
from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB

# A compact operation language: each op is (kind, stream, chunk_step).
operation = st.tuples(
    st.sampled_from(["seq", "jump", "write", "random"]),
    st.integers(min_value=0, max_value=3),       # which stream
    st.integers(min_value=0, max_value=500_000),  # randomness source
)


def _build_requests(ops):
    """Turn abstract ops into concrete sector-aligned requests."""
    chunk = 64 * KiB
    positions = {s: s * 10_000 * chunk for s in range(4)}
    requests = []
    for kind, stream, salt in ops:
        if kind == "seq":
            offset = positions[stream]
            positions[stream] += chunk
            requests.append(IORequest(kind=IOKind.READ, disk_id=0,
                                      offset=offset, size=chunk,
                                      stream_id=stream))
        elif kind == "jump":
            positions[stream] += (salt % 7 + 2) * chunk
            offset = positions[stream]
            positions[stream] += chunk
            requests.append(IORequest(kind=IOKind.READ, disk_id=0,
                                      offset=offset, size=chunk,
                                      stream_id=stream))
        elif kind == "write":
            offset = (salt % 100_000) * chunk
            requests.append(IORequest(kind=IOKind.WRITE, disk_id=0,
                                      offset=offset, size=chunk,
                                      stream_id=stream))
        else:  # random read
            offset = (salt % 100_000) * chunk
            requests.append(IORequest(kind=IOKind.READ, disk_id=0,
                                      offset=offset, size=chunk))
    return requests


@given(ops=st.lists(operation, min_size=1, max_size=40))
@settings(max_examples=25, deadline=None)
def test_property_server_conserves_requests(ops):
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=DISKSIM_GENERIC, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=512 * KiB, memory_budget=16 * MiB,
        buffer_timeout=1.0, stream_timeout=2.0, gc_period=0.5))
    requests = _build_requests(ops)
    completions = []

    def sequential_submitter(sim):
        # Per-stream ordering matters for the classifier: issue each
        # request after the previous one from the same stream completes.
        in_flight = {}
        for request in requests:
            key = request.stream_id
            if key in in_flight:
                yield in_flight[key]
            event = server.submit(request)
            event.callbacks.append(
                lambda e: completions.append(e.value.request_id))
            in_flight[key] = event
        for event in in_flight.values():
            if not event.processed:
                yield event

    process = sim.process(sequential_submitter(sim))
    sim.run_until_event(process, limit=600.0)
    sim.run()  # drain GC
    # Exactly-once completion for every submitted request.
    assert sorted(completions) == sorted(r.request_id for r in requests)
    # Server accounting agrees.
    assert server.stats.counter("completed").count \
        + (0 if server.write_coalescer else 0) >= len(
            [r for r in requests if r.is_read])
    # All staged memory eventually reclaimed.
    assert server.buffered.in_use == 0


@given(offsets=st.lists(st.integers(min_value=0, max_value=1_000_000),
                        min_size=1, max_size=30))
@settings(max_examples=20, deadline=None)
def test_property_drive_conserves_random_reads(offsets):
    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC, config=DriveConfig(
        rotation_mode=RotationMode.EXPECTED))
    chunk = 64 * KiB
    requests = [IORequest(kind=IOKind.READ, disk_id=0,
                          offset=(o % 1_000_000) * chunk % (
                              drive.capacity_bytes - chunk)
                          // chunk * chunk,
                          size=chunk)
                for o in offsets]
    events = [drive.submit(r) for r in requests]
    sim.run()
    assert all(e.processed and e.ok for e in events)
    assert drive.stats.counter("completed").count == len(requests)
    assert drive.stats.counter("completed").total_bytes \
        == len(requests) * chunk
