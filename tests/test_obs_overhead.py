"""The zero-overhead-off gate (DESIGN.md §7).

Three pins, strongest first:

* **Off is the default** and every component hook reduces to a cached
  boolean — the default path runs the exact same kernel event stream as
  before the hooks existed (``obs_overhead`` in ``bench --check`` pins
  the wall-clock side of the same guarantee).
* **Span recording is passive**: a spans-only traced run produces
  bit-identical simulated results *and* a bit-identical kernel event
  stream — opening/closing spans never schedules events or consumes
  randomness.
* **Telemetry is read-only but scheduled**: a telemetry-on run's
  simulated results are equal, while its kernel event stream is not
  (the sampler's timeouts enter the heap).
"""

from repro import obs
from repro.core import ServerParams, StreamServer
from repro.disk.drive import DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.domainbench import obs_overhead, server_smoke
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.units import KiB
from repro.workload import ClientFleet, StreamSpec

DURATION = 0.2
STREAMS = 4


def _run(tracer=None):
    """One deterministic server run; returns (fingerprint, tracer)."""
    sim = Simulator(trace=tracer)
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      DriveConfig(rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, drive, ServerParams())
    size = 64 * KiB
    spacing = drive.capacity_bytes // STREAMS
    spacing -= spacing % size
    specs = [StreamSpec(stream_id=i, disk_id=0, start_offset=i * spacing,
                        request_size=size) for i in range(STREAMS)]
    fleet = ClientFleet(sim, server, specs)
    report = fleet.run(duration=DURATION)
    fingerprint = (
        sim.now,
        report.total_bytes,
        tuple(report.per_stream_bytes),
        report.mean_latency,
        server.stats.counter("completed").count,
        server.stats.counter("staged_hits").count,
        drive.stats.counter("completed").count,
        drive.stats.counter("seeks").count,
    )
    return fingerprint, tracer


def test_observability_is_off_by_default():
    assert obs.current() is obs.OBS_OFF
    assert not obs.current().enabled


def test_activation_restores_previous_context():
    context = obs.ObsContext()
    with obs.activated(context):
        assert obs.current() is context
        inner = obs.ObsContext()
        with obs.activated(inner):
            assert obs.current() is inner
        assert obs.current() is context
    assert obs.current() is obs.OBS_OFF


def test_off_run_records_no_spans():
    context = obs.ObsContext()
    baseline, _ = _run()
    assert obs.current() is obs.OBS_OFF  # nothing leaked
    assert len(context.spans) == 0


def test_spans_on_is_bit_identical():
    """Tracing changes nothing: results AND kernel event stream equal."""
    plain, plain_tracer = _run(Tracer(capacity=None))
    with obs.activated(obs.ObsContext(span_capacity=None)) as context:
        traced, traced_tracer = _run(Tracer(capacity=None))
    assert len(context.spans) > 0  # the traced run did record
    assert traced == plain
    assert traced_tracer.kernel_steps == plain_tracer.kernel_steps
    assert traced_tracer.records() == plain_tracer.records()


def test_telemetry_on_results_equal_events_differ():
    plain, plain_tracer = _run(Tracer(capacity=None))
    with obs.activated(
            obs.ObsContext(telemetry_interval=0.01)) as context:
        sampled, sampled_tracer = _run(Tracer(capacity=None))
    assert sampled == plain
    # The sampler's own timeouts entered the event heap.
    assert sampled_tracer.kernel_steps > plain_tracer.kernel_steps
    assert context.telemetries, "telemetry never attached"


def test_repeated_off_runs_are_deterministic():
    assert _run()[0] == _run()[0]


def test_obs_overhead_workload_matches_server_smoke():
    """The bench workload is the same deterministic run, obs off."""
    assert obs_overhead() == server_smoke()
