"""Integration tests: block layer + schedulers over a simulated drive."""

import pytest

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.host import BlockLayer, make_scheduler
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_stack(sim, scheduler_name="noop", dispatch_depth=1, **sched_kwargs):
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(rotation_mode=RotationMode.EXPECTED))
    scheduler = make_scheduler(scheduler_name, **sched_kwargs)
    return BlockLayer(sim, drive, scheduler,
                      dispatch_depth=dispatch_depth), drive


def read(offset, size=64 * KiB, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


def test_single_request_completes():
    sim = Simulator()
    layer, _drive = make_stack(sim)
    event = layer.submit(read(0))
    sim.run()
    assert event.processed
    assert event.value.latency > 0


def test_dispatch_depth_respected():
    sim = Simulator()
    layer, _drive = make_stack(sim, dispatch_depth=1)
    for i in range(5):
        layer.submit(read(i * 10 * MiB))
    max_seen = 0

    def watcher(sim):
        nonlocal max_seen
        for _ in range(200):
            max_seen = max(max_seen, layer.in_flight)
            yield sim.timeout(0.001)

    sim.process(watcher(sim))
    sim.run()
    assert max_seen <= 1
    assert layer.stats.counter("completed").count == 5


def test_merged_requests_all_complete():
    sim = Simulator()
    layer, _drive = make_stack(sim, "noop")
    first = layer.submit(read(0, 64 * KiB))
    second = layer.submit(read(64 * KiB, 64 * KiB))  # back-merges
    sim.run()
    assert first.processed and second.processed
    assert layer.stats.counter("completed").count == 2


def test_anticipatory_waits_then_dispatches_same_stream():
    sim = Simulator()
    layer, _drive = make_stack(sim, "anticipatory")
    log = []

    def stream_one(sim):
        for i in range(4):
            event = layer.submit(read(i * 64 * KiB, stream=1))
            yield event
            log.append((sim.now, 1))

    def stream_two(sim):
        yield sim.timeout(0.001)
        event = layer.submit(read(40_000 * MiB // 1024 * KiB, stream=2))
        yield event
        log.append((sim.now, 2))

    sim.process(stream_one(sim))
    sim.process(stream_two(sim))
    sim.run()
    # Anticipation services all of stream 1 before the far stream 2.
    assert [stream for _t, stream in log] == [1, 1, 1, 1, 2]
    assert layer.scheduler.anticipation_hits >= 2


def test_idle_wait_counted():
    sim = Simulator()
    layer, _drive = make_stack(sim, "anticipatory")

    def stream_one(sim):
        for i in range(2):
            yield layer.submit(read(i * 64 * KiB, stream=1))
            yield sim.timeout(0.002)  # think time inside the window

    sim.process(stream_one(sim))
    sim.run()
    assert layer.stats.counter("idle_waits").count >= 1


def test_cfq_slices_interleave_two_streams():
    sim = Simulator()
    layer, _drive = make_stack(sim, "cfq", slice_sync=0.02)
    done = []

    def client(sim, stream, base):
        for i in range(8):
            yield layer.submit(read(base + i * 64 * KiB, stream=stream))
        done.append(stream)

    capacity = layer.capacity_bytes
    sim.process(client(sim, 1, 0))
    sim.process(client(sim, 2, capacity // 2 // (64 * KiB) * (64 * KiB)))
    sim.run()
    assert sorted(done) == [1, 2]
    assert layer.scheduler.slice_switches >= 2


def test_dispatcher_parks_and_restarts():
    sim = Simulator()
    layer, _drive = make_stack(sim)
    layer.submit(read(0))
    sim.run()
    assert not layer._dispatcher_running
    event = layer.submit(read(64 * KiB))
    sim.run()
    assert event.processed


def test_deadline_scheduler_over_device():
    sim = Simulator()
    layer, _drive = make_stack(sim, "deadline")
    events = [layer.submit(read(i * 100 * MiB, stream=i)) for i in range(6)]
    sim.run()
    assert all(e.processed for e in events)


def test_dispatch_depth_validation():
    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC)
    with pytest.raises(ValueError):
        BlockLayer(sim, drive, make_scheduler("noop"), dispatch_depth=0)


def test_throughput_interleaved_vs_anticipated():
    """Anticipatory sustains more throughput than noop for two far
    streams of synchronous sequential reads — Figure 2's ordering."""
    def run(scheduler_name):
        sim = Simulator()
        layer, _drive = make_stack(sim, scheduler_name)
        total = 4 * MiB
        spacing = layer.capacity_bytes // 2 // (64 * KiB) * (64 * KiB)

        def client(sim, stream, base):
            position = base
            while position < base + total:
                yield layer.submit(read(position, stream=stream))
                position += 64 * KiB

        sim.process(client(sim, 1, 0))
        sim.process(client(sim, 2, spacing))
        sim.run()
        return 2 * total / sim.now

    assert run("anticipatory") > run("noop")
