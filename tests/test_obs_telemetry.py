"""Time-series telemetry: ring buffers, the sampler, and auto-wiring."""

import pytest

from repro import obs
from repro.core import ServerParams, StreamServer
from repro.disk.drive import DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.disk.specs import DISKSIM_GENERIC
from repro.obs.telemetry import Telemetry, TimeSeries
from repro.sim import Simulator
from repro.units import KiB
from repro.workload import ClientFleet, StreamSpec


# ---------------------------------------------------------------------------
# TimeSeries ring buffer
# ---------------------------------------------------------------------------

def test_timeseries_ring_buffer_evicts_oldest():
    series = TimeSeries("m", capacity=3)
    for index in range(5):
        series.record(float(index), float(index * 10))
    assert len(series) == 3
    assert series.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert series.last == (4.0, 40.0)
    assert series.mean() == pytest.approx(30.0)
    assert series.max() == 40.0


def test_timeseries_empty():
    series = TimeSeries("m")
    assert series.last is None
    assert series.mean() == 0.0
    assert series.max() == 0.0
    assert series.rates() == []


def test_timeseries_counter_rates():
    series = TimeSeries("m", kind="counter")
    series.record(0.0, 0.0)
    series.record(2.0, 10.0)
    series.record(4.0, 10.0)   # idle interval
    series.record(5.0, 25.0)
    assert series.rates() == [(2.0, 5.0), (4.0, 0.0), (5.0, 15.0)]


# ---------------------------------------------------------------------------
# Telemetry sampler
# ---------------------------------------------------------------------------

def test_duplicate_metric_rejected():
    telemetry = Telemetry(Simulator(), interval=0.1)
    telemetry.add_gauge("m", lambda: 0.0)
    with pytest.raises(ValueError, match="already registered"):
        telemetry.add_counter("m", lambda: 0.0)


def test_bad_interval_rejected():
    with pytest.raises(ValueError, match="interval"):
        Telemetry(Simulator(), interval=0.0)


def test_sampler_tracks_and_self_terminates():
    sim = Simulator()
    level = {"value": 0.0}
    telemetry = Telemetry(sim, interval=0.5)
    telemetry.add_gauge("level", lambda: level["value"])

    def workload():
        for step in range(1, 5):
            yield sim.timeout(1.0)
            level["value"] = float(step)

    sim.process(workload())
    telemetry.start()
    telemetry.start()  # idempotent
    sim.run()
    # The sampler stopped itself instead of ticking an idle simulation.
    assert not telemetry.running
    assert sim.queue_length == 0
    samples = telemetry.series["level"].samples()
    assert telemetry.samples_taken == len(samples) >= 8
    assert samples[0] == (0.0, 0.0)
    assert telemetry.series["level"].max() >= 3.0
    # The run ended when the workload did, modulo one final tick.
    assert sim.now <= 4.0 + 0.5 + 1e-9


def test_sample_direct_snapshot():
    telemetry = Telemetry(Simulator(), interval=0.1)
    telemetry.add_counter("c", lambda: 42)
    telemetry.sample(now=1.25)
    assert telemetry.series["c"].samples() == [(1.25, 42.0)]


# ---------------------------------------------------------------------------
# Auto-wiring through an activated context
# ---------------------------------------------------------------------------

def test_server_and_drive_metrics_wired():
    with obs.activated(
            obs.ObsContext(telemetry_interval=0.01)) as context:
        sim = Simulator()
        drive = DiskDrive(sim, DISKSIM_GENERIC,
                          DriveConfig(rotation_mode=RotationMode.EXPECTED))
        server = StreamServer(sim, drive, ServerParams())
        size = 64 * KiB
        spacing = drive.capacity_bytes // 4
        spacing -= spacing % size
        specs = [StreamSpec(stream_id=i, disk_id=0,
                            start_offset=i * spacing, request_size=size)
                 for i in range(4)]
        fleet = ClientFleet(sim, server, specs)
        fleet.run(duration=0.2)
    assert len(context.telemetries) == 1
    telemetry = context.telemetries[0][1]
    series = telemetry.series
    # Paper-relevant server gauges and counters are all present.
    for name in ("server.dispatch_occupancy", "server.buffered_bytes",
                 "server.readahead_depth", "server.gc_reclaimed_bytes",
                 "server.retries", "server.completed"):
        assert name in series, f"missing metric {name}"
    assert f"disk.{drive.name}.queue_length" in series
    assert telemetry.samples_taken > 0
    # The sampled totals agree with the live counters at end of run.
    last = series["server.completed"].last
    assert last is not None
    assert last[1] == server.stats.counter("completed").count
    assert series["server.buffered_bytes"].max() > 0
    assert series["server.dispatch_occupancy"].max() >= 1


def test_spans_only_context_schedules_no_telemetry():
    with obs.activated(obs.ObsContext()) as context:
        sim = Simulator()
        drive = DiskDrive(sim, DISKSIM_GENERIC,
                          DriveConfig(rotation_mode=RotationMode.EXPECTED))
        StreamServer(sim, drive, ServerParams())
        assert context.telemetry_for(sim) is None
    assert context.telemetries == []
