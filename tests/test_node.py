"""Tests for storage-node assembly and the host cost model."""

import pytest

from repro.disk import DISKSIM_GENERIC, WD800JD
from repro.io import IOKind, IORequest
from repro.node import (
    HostParams,
    base_topology,
    build_node,
    large_topology,
    medium_topology,
)
from repro.sim import Simulator
from repro.units import KiB, MiB, US


def read(disk_id, offset, size, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=disk_id, offset=offset,
                     size=size, stream_id=stream)


def test_base_topology_single_disk():
    sim = Simulator()
    node = build_node(sim, base_topology())
    assert node.num_disks == 1
    assert node.disk_ids == [0]


def test_medium_topology_eight_disks_two_controllers():
    sim = Simulator()
    node = build_node(sim, medium_topology())
    assert node.num_disks == 8
    assert len(node.controllers) == 2
    assert node.disk_ids == list(range(8))


def test_large_topology_sixty_disks():
    sim = Simulator()
    node = build_node(sim, large_topology(60))
    assert node.num_disks == 60
    assert len(node.controllers) == 15  # 15 full controllers


def test_large_topology_remainder_controller():
    topo = large_topology(10)
    assert topo.disks_per_controller == [4, 4, 2]


def test_large_topology_validation():
    with pytest.raises(ValueError):
        large_topology(0)
    with pytest.raises(ValueError):
        large_topology(100)


def test_node_routes_across_controllers():
    sim = Simulator()
    node = build_node(sim, medium_topology())
    events = [node.submit(read(d, 0, 64 * KiB)) for d in (0, 5)]
    sim.run()
    assert all(e.processed for e in events)
    # Disk 0 on controller 0, disk 5 on controller 1.
    assert node.controllers[0].stats.counter("completed").count == 1
    assert node.controllers[1].stats.counter("completed").count == 1


def test_node_unknown_disk_rejected():
    sim = Simulator()
    node = build_node(sim, base_topology())
    with pytest.raises(ValueError):
        node.submit(read(3, 0, 64 * KiB))


def test_node_completion_cost_scales_with_buffers():
    """More live buffers -> slower completion path."""
    host = HostParams(cpus=1, completion_per_buffer_s=10 * US)

    def one_request_latency(extra_buffers):
        sim = Simulator()
        node = build_node(sim, base_topology(host=host))
        node.register_buffers(extra_buffers)
        event = node.submit(read(0, 0, 64 * KiB))
        sim.run()
        return event.value.latency

    fast = one_request_latency(0)
    slow = one_request_latency(1000)
    assert slow > fast + 900 * 10 * US  # ~10ms extra


def test_node_register_buffers_validation():
    sim = Simulator()
    node = build_node(sim, base_topology())
    node.register_buffers(5)
    node.register_buffers(-5)
    with pytest.raises(ValueError):
        node.register_buffers(-1)


def test_node_outstanding_tracks_in_flight():
    sim = Simulator()
    node = build_node(sim, base_topology())
    for i in range(4):
        node.submit(read(0, i * MiB, 64 * KiB))
    sim.run(until=0.0005)
    assert node.outstanding >= 1
    sim.run()
    assert node.outstanding == 0


def test_node_throughput_accounting():
    sim = Simulator()
    node = build_node(sim, base_topology())
    for i in range(8):
        node.submit(read(0, i * 64 * KiB, 64 * KiB))
    sim.run()
    total = node.stats.counter("completed").total_bytes
    assert total == 8 * 64 * KiB
    assert node.throughput(sim.now) == pytest.approx(total / sim.now)


def test_node_latency_sampler_populated():
    sim = Simulator()
    node = build_node(sim, base_topology())
    node.submit(read(0, 0, 64 * KiB))
    sim.run()
    sampler = node.stats.latency("latency")
    assert sampler.count == 1
    assert sampler.mean > 0


def test_node_seeded_reproducibility():
    def run_once(seed):
        sim = Simulator()
        node = build_node(sim, base_topology(seed=seed))
        events = [node.submit(read(0, i * 10 * MiB, 64 * KiB))
                  for i in range(5)]
        sim.run()
        return [e.value.latency for e in events]

    assert run_once(1) == run_once(1)
    assert run_once(1) != run_once(2)


def test_node_drive_accessor():
    sim = Simulator()
    node = build_node(sim, medium_topology())
    drive = node.drive(3)
    assert drive.name == "disk3"


def test_node_wd800jd_medium_matches_paper_testbed():
    sim = Simulator()
    node = build_node(sim, medium_topology(disk_spec=WD800JD))
    assert node.num_disks == 8
    assert node.capacity_bytes == node.drive(0).capacity_bytes
