"""Open-loop clients + the server's bounded admission edge (DESIGN.md §9).

The load-bearing pins:

* **shedding bounds the admitted tail** — driven past saturation, the
  admission-controlled server sheds honestly (reported, with a
  retry-after hint) while the requests it *does* admit keep a p99 far
  below the unbounded-queue collapse;
* **policies off is a no-op** — admission_limit=0 (the default) sheds
  nothing, ever;
* **determinism** — arrival sequences are (seed, stream) functions, so
  identical runs produce identical counts byte for byte.
"""

import pytest

from repro.core import ServerParams, StreamServer
from repro.faults import AdmissionShedError
from repro.sim import Simulator
from repro.units import KiB
from repro.workload import OpenLoopClient, OpenLoopFleet, StreamSpec, \
    poisson_arrivals

SIZE = 64 * KiB


class QueueDevice:
    """Single FIFO server with a fixed service time — a queueing-theory
    textbook device, so saturation arithmetic is exact."""

    capacity_bytes = 1 << 40
    disk_ids = [0]

    def __init__(self, sim, service_s=1e-3):
        self.sim = sim
        self.service_s = service_s
        self._busy_until = 0.0

    def submit(self, request):
        start = max(self.sim.now, self._busy_until)
        done = start + self.service_s
        self._busy_until = done
        return self.sim.event("queue.io").succeed(
            request, delay=done - self.sim.now)

    def register_buffers(self, count):
        pass


def _specs(streams):
    return [StreamSpec(stream_id=i, disk_id=0,
                       start_offset=i * (1 << 30), request_size=SIZE)
            for i in range(streams)]


def _overload_run(admission_limit, admission_queue_depth, seed=3):
    """4 streams at 2x a 1 ms-service device's capacity for 2 s."""
    sim = Simulator()
    device = QueueDevice(sim, service_s=1e-3)
    server = StreamServer(sim, device, ServerParams(
        read_ahead=0,
        admission_limit=admission_limit,
        admission_queue_depth=admission_queue_depth))
    fleet = OpenLoopFleet(sim, server, _specs(4), rate=2000.0, seed=seed)
    return fleet.run(duration=2.0, warmup=0.25)


# ---------------------------------------------------------------------------
# Arrival generation
# ---------------------------------------------------------------------------

def test_poisson_arrivals_deterministic_and_windowed():
    first = poisson_arrivals(rate=500.0, duration=1.0, seed=11)
    second = poisson_arrivals(rate=500.0, duration=1.0, seed=11)
    assert first == second
    assert first != poisson_arrivals(rate=500.0, duration=1.0, seed=12)
    assert all(0.0 <= t < 1.0 for t in first)
    assert first == sorted(first)
    # Mean rate lands near the configured one (law of large numbers).
    assert 400 <= len(first) <= 600
    with pytest.raises(ValueError):
        poisson_arrivals(rate=0.0, duration=1.0)
    with pytest.raises(ValueError):
        poisson_arrivals(rate=1.0, duration=-1.0)


def test_client_requires_exactly_one_arrival_source():
    sim = Simulator()
    device = QueueDevice(sim)
    spec = _specs(1)[0]
    with pytest.raises(ValueError):
        OpenLoopClient(sim, device, spec)
    with pytest.raises(ValueError):
        OpenLoopClient(sim, device, spec, rate=10.0, arrivals=[0.5])
    with pytest.raises(ValueError):
        OpenLoopClient(sim, device, spec, rate=-1.0)


def test_trace_mode_issues_at_exact_times():
    sim = Simulator()
    device = QueueDevice(sim, service_s=1e-4)
    client = OpenLoopClient(sim, device, _specs(1)[0],
                            arrivals=[0.1, 0.25, 0.7])
    client.start()
    sim.run()
    assert client.issued == 3
    assert client.completed == 3
    assert client.completed_bytes == 3 * SIZE
    assert client.in_flight == 0


# ---------------------------------------------------------------------------
# Admission control under overload
# ---------------------------------------------------------------------------

def test_shedding_keeps_admitted_p99_bounded():
    """2x overload: without admission the queue (and the tail) grows
    without bound; with it, sheds are reported and the admitted p99
    stays within a small multiple of the in-service backlog."""
    unbounded = _overload_run(admission_limit=0,
                              admission_queue_depth=0)
    bounded = _overload_run(admission_limit=8, admission_queue_depth=4)
    assert unbounded.shed == 0  # policies off: never sheds
    assert bounded.shed > 0
    assert bounded.shed_rate > 0.2  # 2x overload sheds a lot
    assert bounded.completed > 0
    # The admitted tail is bounded by roughly (limit + depth) services;
    # the unbounded run's tail is the whole accumulated backlog.
    assert bounded.p99_latency < 0.05
    assert unbounded.p99_latency > 10 * bounded.p99_latency


def test_shed_error_carries_retry_after_hint():
    sim = Simulator()
    device = QueueDevice(sim, service_s=1e-3)
    server = StreamServer(sim, device, ServerParams(
        read_ahead=0, admission_limit=1, admission_queue_depth=0))
    hints = []

    def burst():
        events = [server.submit(request) for request in (
            _request(offset) for offset in range(0, 4 * SIZE, SIZE))]
        for event in events:
            try:
                yield event
            except AdmissionShedError as exc:
                hints.append(exc.retry_after_s)

    def _request(offset):
        from repro.io import IOKind, IORequest
        return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                         size=SIZE, stream_id=0)

    sim.process(burst())
    sim.run()
    assert hints, "burst past the limit must shed"
    assert all(hint > 0.0 for hint in hints)
    assert server.report().shed_requests == len(hints)


def test_overload_run_is_deterministic():
    first = _overload_run(admission_limit=8, admission_queue_depth=4)
    second = _overload_run(admission_limit=8, admission_queue_depth=4)
    assert first.issued == second.issued
    assert first.completed == second.completed
    assert first.shed == second.shed
    assert first.completed_bytes == second.completed_bytes
    assert first.p99_latency == second.p99_latency
    # A different seed is a different arrival sequence.
    other = _overload_run(admission_limit=8, admission_queue_depth=4,
                          seed=4)
    assert other.issued != first.issued or other.shed != first.shed


def test_report_rates():
    report = _overload_run(admission_limit=8, admission_queue_depth=4)
    assert report.offered_rate == pytest.approx(
        report.issued / 2.0)
    assert report.shed_rate == pytest.approx(
        report.shed / report.issued)
    assert report.throughput == pytest.approx(
        report.completed_bytes / 2.0)
    assert report.errors == 0


def test_admission_params_validated():
    with pytest.raises(ValueError):
        ServerParams(admission_limit=-1)
    with pytest.raises(ValueError):
        ServerParams(admission_queue_depth=-1)
    with pytest.raises(ValueError):
        ServerParams(shed_backoff_s=0.0)
    with pytest.raises(ValueError):
        ServerParams(shed_backoff_jitter=1.0)
