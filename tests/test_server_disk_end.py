"""Regression test: streams reaching the end of the disk don't wedge."""

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB


def test_stream_at_disk_end_completes_all_requests():
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=4 * MiB, memory_budget=32 * MiB))
    # Start close enough to the end that read-ahead runs out of disk.
    start = node.capacity_bytes - 2 * MiB
    start -= start % (64 * KiB)
    completions = []

    def client(sim):
        offset = start
        while offset + 64 * KiB <= node.capacity_bytes:
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=1))
            completions.append(offset)
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=60.0)
    assert len(completions) == 2 * MiB // (64 * KiB)
    sim.run()  # GC drains; nothing wedged
    assert server.buffered.in_use == 0
