"""Tests for the drive-level write-back cache (WCE)."""

import pytest

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_drive(sim, write_cache=8 * MiB):
    spec = DISKSIM_GENERIC.with_write_cache(write_cache)
    return DiskDrive(sim, spec,
                     config=DriveConfig(rotation_mode=RotationMode.EXPECTED))


def write(offset, size=64 * KiB):
    return IORequest(kind=IOKind.WRITE, disk_id=0, offset=offset,
                     size=size)


def read(offset, size=64 * KiB):
    return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                     size=size)


def test_absorbed_write_completes_fast():
    sim = Simulator()
    drive = make_drive(sim)
    event = drive.submit(write(0))
    sim.run(until=0.002)
    assert event.processed
    assert event.value.latency < 0.002  # interface + overhead, no media
    assert event.value.annotations.get("disk.wce")


def test_write_through_when_disabled():
    sim = Simulator()
    drive = make_drive(sim, write_cache=0)
    event = drive.submit(write(100 * MiB))
    sim.run()
    assert event.value.latency > 0.003  # seek + rotation + media
    assert "disk.wce" not in event.value.annotations


def test_dirty_data_destages_in_background():
    sim = Simulator()
    drive = make_drive(sim)
    for index in range(8):
        drive.submit(write(index * 64 * KiB))
    sim.run()
    assert drive.stats.counter("destaged").total_bytes == 8 * 64 * KiB
    assert drive.stats.counter("media_write").total_bytes == 8 * 64 * KiB
    assert drive._dirty_sectors == 0


def test_budget_exhaustion_falls_back_to_media():
    sim = Simulator()
    drive = make_drive(sim, write_cache=128 * KiB)
    events = [drive.submit(write(index * 10 * MiB)) for index in range(4)]
    sim.run()
    absorbed = drive.stats.counter("write_absorbed").count
    assert absorbed <= 2  # 128K budget = two 64K writes
    assert all(e.processed for e in events)
    assert drive.stats.counter("media_write").total_bytes \
        == 4 * 64 * KiB  # everything reaches media eventually


def test_flush_barrier():
    sim = Simulator()
    drive = make_drive(sim)
    drive.submit(write(0))
    drive.submit(write(64 * KiB))
    barrier = drive.flush()
    sim.run_until_event(barrier, limit=10.0)
    assert drive._dirty_sectors == 0
    assert drive.stats.counter("destaged").count >= 1


def test_flush_on_clean_drive_is_immediate():
    sim = Simulator()
    drive = make_drive(sim)
    barrier = drive.flush()
    sim.run(until=0.001)
    assert barrier.processed


def test_read_after_write_served_from_dirty_buffer():
    sim = Simulator()
    drive = make_drive(sim)
    drive.submit(write(500 * MiB))
    event = drive.submit(read(500 * MiB))
    sim.run(until=0.003)
    assert event.processed
    assert event.value.annotations.get("disk.hit") == "submit"


def test_reads_prioritised_over_destage():
    """Queued reads are serviced before dirty data destages."""
    sim = Simulator()
    drive = make_drive(sim)
    drive.submit(write(700 * MiB))  # absorbed, pending destage
    read_event = drive.submit(read(100 * MiB))
    sim.run_until_event(read_event, limit=5.0)
    # At read completion the dirty data may still be undestaged.
    destaged_at_read = drive.stats.counter("destaged").total_bytes
    sim.run()
    assert drive.stats.counter("destaged").total_bytes == 64 * KiB
    assert destaged_at_read <= 64 * KiB


def test_interleaved_write_streams_gain_from_wce():
    """WCE turns scattered sync writes into batched destages."""
    def run(write_cache):
        sim = Simulator()
        drive = make_drive(sim, write_cache=write_cache)
        num_streams, per_stream = 16, 1 * MiB
        spacing = drive.capacity_bytes // num_streams
        spacing -= spacing % (64 * KiB)
        done = {}

        def writer(sim, stream):
            offset = stream * spacing
            for _ in range(per_stream // (64 * KiB)):
                yield drive.submit(write(offset))
                offset += 64 * KiB

        processes = [sim.process(writer(sim, s))
                     for s in range(num_streams)]
        joined = sim.all_of(processes)
        sim.run_until_event(joined, limit=600.0)
        return sim.now  # time until all writes acknowledged

    assert run(64 * MiB) < run(0) / 3
