"""Tests for the tracer and the server's garbage collector."""

import pytest

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.sim.trace import TraceRecord, Tracer
from repro.units import KiB, MiB


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_tracer_capacity_bounded():
    tracer = Tracer(capacity=10)
    for index in range(25):
        tracer.emit(float(index), "src", "evt", index)
    assert len(tracer) == 10
    assert tracer.records()[0].detail == 15  # oldest retained


def test_tracer_counts_capacity_evictions():
    """Overflow was previously silent; ``dropped`` now counts it."""
    tracer = Tracer(capacity=10)
    for index in range(25):
        tracer.emit(float(index), "src", "evt", index)
    assert len(tracer) == 10
    assert tracer.dropped == 15
    tracer.clear()
    assert tracer.dropped == 0


def test_tracer_repr_surfaces_drops():
    tracer = Tracer(capacity=2)
    for index in range(3):
        tracer.emit(float(index), "src", "evt")
    assert "dropped=1" in repr(tracer)
    assert "records=2/2" in repr(tracer)
    assert "∞" in repr(Tracer(capacity=None))


def test_tracer_kind_whitelist():
    tracer = Tracer(kinds={"keep"})
    tracer.emit(0.0, "s", "keep")
    tracer.emit(0.0, "s", "drop")
    assert len(tracer) == 1
    assert tracer.dropped == 1


def test_tracer_filters():
    tracer = Tracer()
    tracer.emit(0.0, "a", "x", 1)
    tracer.emit(1.0, "b", "x", 2)
    tracer.emit(2.0, "a", "y", 3)
    assert len(tracer.records(source="a")) == 2
    assert len(tracer.records(kind="x")) == 2
    assert len(tracer.records(source="a", kind="x")) == 1
    assert tracer.last().detail == 3
    assert tracer.last(kind="x").detail == 2
    assert tracer.last(kind="zzz") is None


def test_tracer_sinks():
    tracer = Tracer()
    seen = []
    tracer.add_sink(seen.append)
    tracer.emit(0.0, "s", "k", "payload")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceRecord)


def test_tracer_clear():
    tracer = Tracer()
    tracer.emit(0.0, "s", "k")
    tracer.clear()
    assert len(tracer) == 0


def test_tracer_kernel_hook_counts_steps():
    tracer = Tracer()
    sim = Simulator(trace=tracer)
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    assert tracer.kernel_steps == 2


# ---------------------------------------------------------------------------
# Garbage collector
# ---------------------------------------------------------------------------

def make_server(sim, **kwargs):
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    defaults = dict(read_ahead=1 * MiB, memory_budget=32 * MiB,
                    gc_period=0.25, buffer_timeout=0.5,
                    stream_timeout=1.0)
    defaults.update(kwargs)
    return StreamServer(sim, node, ServerParams(**defaults)), node


def detect_stream(sim, server, start=0, count=6):
    def client(sim):
        offset = start
        for _ in range(count):
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=1))
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=30.0)


def test_gc_self_terminates_when_idle():
    sim = Simulator()
    server, _node = make_server(sim)
    detect_stream(sim, server)
    assert server.gc.running
    sim.run()  # everything times out and is reclaimed
    assert not server.gc.running
    assert server.classifier.live_streams == 0
    assert len(server.buffered) == 0


def test_gc_counts_work():
    sim = Simulator()
    server, _node = make_server(sim)
    detect_stream(sim, server)
    sim.run()
    assert server.gc.cycles > 0
    assert server.gc.streams_dropped == 1
    assert server.gc.buffers_reclaimed_bytes > 0


def test_gc_restarts_on_new_activity():
    sim = Simulator()
    server, _node = make_server(sim)
    detect_stream(sim, server, start=0)
    sim.run()
    assert not server.gc.running
    detect_stream(sim, server, start=10 * 10**9 - 10 * 10**9 % (64 * KiB))
    assert server.gc.running
    sim.run()
    assert not server.gc.running


def test_gc_expires_undetected_bitmaps():
    sim = Simulator()
    server, _node = make_server(sim, classifier_interval=0.5)
    # Two requests: not enough for detection, but bitmaps allocated.
    event = server.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                    offset=0, size=64 * KiB))
    sim.run_until_event(event, limit=5.0)
    assert server.classifier.bitmaps.live_count == 1
    sim.run()  # GC expires the stale bitmap, then exits
    assert server.classifier.bitmaps.live_count == 0
    assert not server.gc.running


def test_gc_keeps_stream_with_pending_demand():
    """A stream with waiting clients is never collected mid-wait."""
    sim = Simulator()
    server, node = make_server(sim, stream_timeout=0.1, gc_period=0.05)
    detect_stream(sim, server)
    # Park a pending request far beyond the fetch frontier by submitting
    # at the stream's expected offset while the disk is saturated with
    # direct traffic.
    stream = next(iter(server.classifier.streams.values()))
    pending_event = server.submit(IORequest(
        kind=IOKind.READ, disk_id=0, offset=stream.client_next,
        size=64 * KiB, stream_id=1))
    sim.run_until_event(pending_event, limit=30.0)
    assert pending_event.ok
