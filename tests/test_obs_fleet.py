"""Cross-process trace collection: pack/ingest, merge, fleet exports.

DESIGN.md §10's wire path: a worker runs its points under a local obs
context, packs spans + telemetry into a JSON-safe payload, and the
coordinator ingests every payload into the session context — remapping
ids, tagging spans with the worker ident, prefixing remote series. The
pins here: the pack/ingest round trip preserves tree structure exactly,
ingestion is deterministic, the merged Chrome trace passes schema
validation with one pid lane per worker, and the end-to-end fabric
traced run returns byte-identical values to serial.
"""

import json

import pytest

from repro import obs
from repro.experiments.base import ExperimentScale
from repro.experiments.fabric import Fabric
from repro.obs.export import (export_chrome_trace, export_prometheus,
                              read_jsonl, validate_chrome_trace)
from repro.obs.spans import SpanRecorder, span_trees

TINY = ExperimentScale("tiny", duration=0.1, warmup=0.02)


def _traced_point(scale, params):
    """Point fn that records spans into whatever obs context is active."""
    context = obs.current()
    if getattr(context, "enabled", False):
        recorder = context.spans
        root = recorder.begin("request", "client", 0.0)
        child = recorder.begin("fetch", "server", 0.001,
                               trace_id=root.trace_id,
                               parent_id=root.span_id)
        recorder.end(child, 0.004)
        recorder.end(root, 0.010)
    return float(params["x"]) * 2.0


# ---------------------------------------------------------------------------
# pack / ingest round trip (no processes)
# ---------------------------------------------------------------------------

def _sample_recorder():
    recorder = SpanRecorder(capacity=None)
    root = recorder.begin("request", "client", 1.0)
    child = recorder.begin("phase", "server", 1.1,
                           trace_id=root.trace_id, parent_id=root.span_id)
    child.set_arg("disk", 3)
    recorder.end(child, 1.4)
    recorder.end(root, 1.5)
    other = recorder.begin("request", "client", 2.0)
    recorder.end(other, 2.2)
    return recorder


def test_pack_ingest_preserves_structure_and_tags_worker():
    source = _sample_recorder()
    packed = json.loads(json.dumps(source.pack()))  # wire-safe
    target = SpanRecorder(capacity=None)
    local = target.begin("local", "client", 0.0)    # pre-existing span
    target.end(local, 0.5)
    kept = target.ingest(packed, worker=7)
    assert kept == 3
    ingested = target.spans[1:]
    # Same names/categories/times, fresh non-colliding ids.
    assert [(s.name, s.category, s.start, s.end) for s in ingested] == \
        [(s.name, s.category, s.start, s.end) for s in source.spans]
    assert all(span.args.get("worker") == 7 for span in ingested)
    assert len({span.span_id for span in target.spans}) == 4
    # Parent/child relation survives the id remap.
    trees = span_trees(ingested)
    roots = [root for root, _children in trees.values()]
    assert {root.name for root in roots} == {"request"}
    preserved = ingested[1]
    assert preserved.parent_id == ingested[0].span_id
    assert preserved.args["disk"] == 3


def test_ingest_respects_capacity_quotas():
    source = SpanRecorder(capacity=None)
    for index in range(10):
        span = source.begin("request", "client", float(index))
        source.end(span, float(index) + 0.1)
    target = SpanRecorder(capacity=4)
    kept = target.ingest(source.pack(), worker=1)
    assert kept == 4
    assert target.dropped == 6


def test_context_payload_round_trip_with_series():
    context = obs.ObsContext(telemetry_interval=None)
    recorder = context.spans
    span = recorder.begin("request", "client", 0.0)
    recorder.end(span, 0.25)
    payload = json.loads(json.dumps(context.pack_payload()))
    assert payload["spans"] and payload["dropped"] == 0

    session = obs.ObsContext(telemetry_interval=None)
    session.ingest_payload(payload, worker=2)
    assert len(session.spans) == 1
    assert session.spans.spans[0].args["worker"] == 2


def test_ingest_payload_prefixes_remote_series():
    payload = {"spans": [], "dropped": 0, "dropped_by_category": {},
               "series": [{"name": "server.queue", "kind": "gauge",
                           "samples": [[0.0, 1.0], [1.0, 3.0]]}]}
    session = obs.ObsContext(telemetry_interval=None)
    session.ingest_payload(payload, worker=4)
    assert session.remote_series[0]["name"] == "w4.server.queue"


# ---------------------------------------------------------------------------
# merged exports
# ---------------------------------------------------------------------------

def test_chrome_export_gives_workers_their_own_pid_lane(tmp_path):
    session = obs.ObsContext(telemetry_interval=None)
    local = session.spans.begin("local", "client", 0.0)
    session.spans.end(local, 0.1)
    worker_payload = _payload_with_one_span()
    session.ingest_payload(worker_payload, worker=1)
    session.ingest_payload(worker_payload, worker=2)
    path = tmp_path / "trace.json"
    export_chrome_trace(session, str(path), meta={"fabric": "2"})
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert validate_chrome_trace(document) == []
    pids = {event["pid"] for event in document["traceEvents"]
            if event["ph"] == "X"}
    assert pids == {1, 2, 3}  # local lane + one per worker ident


def _payload_with_one_span():
    context = obs.ObsContext(telemetry_interval=None)
    span = context.spans.begin("request", "client", 0.0)
    context.spans.end(span, 0.02)
    return context.pack_payload()


def test_prometheus_export_with_fabric_extra_rows(tmp_path):
    session = obs.ObsContext(telemetry_interval=None)
    session.ingest_payload(
        {"spans": [], "dropped": 0, "dropped_by_category": {},
         "series": [{"name": "shed", "kind": "counter",
                     "samples": [[0.0, 0.0], [1.0, 4.0]]}]},
        worker=1)
    path = tmp_path / "fleet.prom"
    export_prometheus(session, str(path),
                      extra=[("fabric.w1.completed", "counter", 9.0)])
    text = path.read_text(encoding="utf-8")
    assert "# TYPE repro_w1_shed counter\nrepro_w1_shed 4" in text
    assert "repro_fabric_w1_completed 9" in text
    # context=None still works: the fabric-only dump path.
    export_prometheus(None, str(path),
                      extra=[("fabric.workers", "gauge", 2.0)])
    assert "repro_fabric_workers" in path.read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# end to end through real worker processes
# ---------------------------------------------------------------------------

def test_fabric_traced_run_merges_spans_and_matches_serial(tmp_path):
    tasks = [(_traced_point, TINY, {"x": float(index)})
             for index in range(6)]
    serial = [_traced_point(TINY, {"x": float(index)})
              for index in range(6)]
    session = obs.ObsContext(telemetry_interval=None)
    with Fabric("2") as fabric:
        values = fabric.run_tasks(
            tasks, trace={"span_capacity": 10_000},
            obs_context=session)
        stats = fabric.stats()
        metrics = dict()
        for name, kind, value in fabric.prometheus_metrics():
            metrics[name] = (kind, value)
    assert values == serial
    # Every task contributed its 2-span tree, tagged by a real worker.
    assert len(session.spans) == 12
    workers = {span.args.get("worker") for span in session.spans.spans}
    assert workers and all(isinstance(w, int) for w in workers)
    # Tracing disabled the cache: all points computed.
    assert stats["completed"] == 6
    assert stats["cache_local_hits"] == 0 and stats["cache_peer_hits"] == 0
    # Per-worker counter rows made it into the fleet metric dump.
    per_worker = [name for name in metrics if ".w" in name]
    assert any(name.endswith(".completed") for name in per_worker)
    assert sum(metrics[name][1] for name in per_worker
               if name.endswith(".computed")) == 6
    # The merged context exports a schema-valid worker-tagged trace.
    path = tmp_path / "merged.json"
    export_chrome_trace(session, str(path), meta={"fabric": "2"})
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert validate_chrome_trace(document) == []


def test_fabric_traced_ingest_is_deterministic():
    tasks = [(_traced_point, TINY, {"x": float(index)})
             for index in range(5)]

    def run_once():
        session = obs.ObsContext(telemetry_interval=None)
        with Fabric("2") as fabric:
            fabric.run_tasks(tasks, trace={"span_capacity": 10_000},
                             obs_context=session)
        return [(s.name, s.category, s.start, s.end, s.span_id,
                 s.trace_id, s.parent_id) for s in session.spans.spans]

    first = run_once()
    second = run_once()
    # Worker tags may differ run to run (who won which task), but the
    # span structure and id assignment are a pure function of the task
    # list because payloads ingest in task-index order.
    assert first == second
