"""Tests for markdown rendering and the extension-experiment registry."""

import pytest

from repro.analysis import ExperimentResult
from repro.analysis.markdown import markdown_table
from repro.experiments import EXTENSIONS, SMOKE
from repro.experiments.runner import main


def make_result():
    result = ExperimentResult(experiment_id="figX", title="Demo",
                              x_label="streams", y_label="MB/s")
    series = result.new_series("a")
    series.add(1, 12.345)
    series.add(10, 6.789)
    other = result.new_series("b")
    other.add(1, 1.0)
    return result


def test_markdown_table_structure():
    table = markdown_table(make_result())
    lines = table.splitlines()
    assert lines[0] == "| streams | a | b |"
    assert lines[1] == "|---|---|---|"
    assert "| 1 | 12.3 | 1.0 |" in lines
    assert "| 10 | 6.8 | — |" in lines  # missing cell dashed


def test_markdown_precision():
    table = markdown_table(make_result(), precision=3)
    assert "12.345" in table


def test_extensions_registry():
    assert set(EXTENSIONS) == {"ext-faults", "ext-fleet",
                               "ext-fleet-openloop",
                               "ext-fragmentation",
                               "ext-insensitivity",
                               "ext-latency-breakdown"}


def test_runner_accepts_extension_ids(capsys):
    exit_code = main(["ext-latency-breakdown", "--scale", "smoke"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "memory-served fraction" in output


def test_latency_breakdown_shape():
    """More read-ahead -> more requests served from memory."""
    result = EXTENSIONS["ext-latency-breakdown"](SMOKE)
    fraction = result.get("memory-served fraction")
    assert fraction.y_at("S=100 R=8M") > fraction.y_at("S=100 R=256K")
    assert fraction.y_at("S=100 R=8M") > 0.9
    mean = result.get("mean (ms)")
    assert mean.y_at("S=100 R=8M") < mean.y_at("S=100 R=256K")
