"""Executor hardening: corrupt cache entries, worker crashes, timeouts.

The sweep executor must degrade gracefully:

* a corrupt on-disk cache entry (truncated write, garbage bytes, wrong
  value shape) is logged, evicted and recomputed — never an abort and
  never a silently poisoned figure;
* a worker process dying mid-sweep (OOM-kill, segfault) breaks the
  pool, and the executor falls back to recomputing the batch serially
  in-process;
* ``REPRO_POINT_TIMEOUT`` bounds each point's wall-clock; an overrun
  yields ``NaN`` and is *not* written to the cache, so the next run
  retries.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time

import pytest

from repro.experiments import executor
from repro.experiments.base import ExperimentScale
from repro.experiments.executor import (
    Point,
    SweepCache,
    SweepSpec,
    point_key,
    run_sweep,
)

TINY = ExperimentScale("tiny", duration=0.1, warmup=0.02)


# -- point functions (top-level so they pickle by reference) ---------------

def _double(scale, params):
    return params["x"] * 2.0


def _crash_in_worker(scale, params):
    """Die hard — but only inside a pool worker, so the serial
    fallback (which runs in the parent) can succeed."""
    if params.get("crash") and multiprocessing.parent_process() is not None:
        os._exit(1)
    return params["x"] * 2.0


def _slow_point(scale, params):
    if params.get("slow"):
        time.sleep(10.0)
    return params["x"] * 2.0


def _spec(fn, points):
    return SweepSpec(experiment_id="hardening-test", title="t",
                     x_label="x", y_label="y", point_fn=fn,
                     points=tuple(points))


def _points(fn, xs, **extra):
    return [Point(series="s", x=x, params={"x": x, **extra}) for x in xs]


# -- corrupt cache entries -------------------------------------------------

@pytest.mark.parametrize("payload", [
    b"not json at all {",
    b"",
    json.dumps({"no_value_key": 1}).encode(),
    json.dumps({"value": "a string is not a rate"}).encode(),
    json.dumps({"value": [1, 2, 3]}).encode(),
    json.dumps({"value": {"series": "nope"}}).encode(),
])
def test_corrupt_cache_entry_evicted_and_recomputed(tmp_path, payload,
                                                    caplog):
    spec = _spec(_double, _points(_double, [3.0]))
    key = point_key(_double, TINY, spec.points[0].params)
    store = SweepCache(tmp_path)
    path = store._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)

    with caplog.at_level("WARNING", logger="repro.sweeps"):
        result = run_sweep(spec, TINY, jobs=1, cache_root=tmp_path)
    assert result.series[0].ys == [6.0]
    assert any("evicting corrupt sweep-cache entry" in record.message
               for record in caplog.records)
    # The entry healed: valid JSON with the recomputed value.
    assert json.loads(path.read_text())["value"] == 6.0


def test_corrupt_entry_does_not_count_as_hit(tmp_path):
    store = SweepCache(tmp_path)
    path = store._path("ab" + "0" * 62)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("garbage")
    hit, value = store.get("ab" + "0" * 62)
    assert (hit, value) == (False, None)
    assert not path.exists()  # evicted


def test_missing_entry_is_a_plain_miss(tmp_path):
    store = SweepCache(tmp_path)
    hit, value = store.get("cd" + "0" * 62)
    assert (hit, value) == (False, None)


# -- worker crashes --------------------------------------------------------

def test_worker_crash_falls_back_to_serial(tmp_path, caplog):
    points = _points(_crash_in_worker, [1.0, 2.0, 3.0], crash=True)
    spec = _spec(_crash_in_worker, points)
    with caplog.at_level("WARNING", logger="repro.sweeps"):
        result = run_sweep(spec, TINY, jobs=2, cache_root=tmp_path)
    assert result.series[0].ys == [2.0, 4.0, 6.0]
    assert any("worker pool failed" in record.message
               for record in caplog.records)


def test_healthy_pool_does_not_fall_back(tmp_path, caplog):
    spec = _spec(_double, _points(_double, [1.0, 2.0]))
    with caplog.at_level("WARNING", logger="repro.sweeps"):
        result = run_sweep(spec, TINY, jobs=2, cache_root=tmp_path)
    assert result.series[0].ys == [2.0, 4.0]
    assert not any("worker pool failed" in record.message
                   for record in caplog.records)


# -- per-point wall-clock timeout ------------------------------------------

def test_point_timeout_yields_nan_and_is_not_cached(tmp_path,
                                                    monkeypatch, caplog):
    monkeypatch.setenv("REPRO_POINT_TIMEOUT", "0.2")
    points = [Point(series="s", x=1.0, params={"x": 1.0, "slow": True}),
              Point(series="s", x=2.0, params={"x": 2.0})]
    spec = _spec(_slow_point, points)
    with caplog.at_level("WARNING", logger="repro.sweeps"):
        result = run_sweep(spec, TINY, jobs=1, cache_root=tmp_path)
    assert math.isnan(result.series[0].ys[0])
    assert result.series[0].ys[1] == 4.0
    # The healthy point is cached; the timed-out one is not.
    slow_key = point_key(_slow_point, TINY, points[0].params)
    fast_key = point_key(_slow_point, TINY, points[1].params)
    store = SweepCache(tmp_path)
    assert store.get(slow_key) == (False, None)
    assert store.get(fast_key) == (True, 4.0)


def test_point_timeout_disabled_by_default(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_POINT_TIMEOUT", raising=False)
    assert executor._point_timeout_s() == 0.0
    spec = _spec(_double, _points(_double, [5.0]))
    result = run_sweep(spec, TINY, jobs=1, cache_root=tmp_path)
    assert result.series[0].ys == [10.0]


def test_point_timeout_malformed_env_ignored(monkeypatch):
    monkeypatch.setenv("REPRO_POINT_TIMEOUT", "soon")
    assert executor._point_timeout_s() == 0.0
