"""Tests for the hedged/redirected mirror volume (DESIGN.md §9).

The load-bearing pins:

* **bit-identity off** — a policies-off HedgedVolume (no hedging, no
  EWMA steering) produces the exact FleetReport a StripedVolume over
  the same single member does: the resilience layer is free when off;
* **tail win** — with one mirror member straggling, hedged reads beat
  blind round-robin on p99 in the same deterministic scenario;
* **degraded mode** — a dead member is excluded after its first
  DiskDeadError and clients never see the death;
* **bookkeeping** — racing hedge copies complete each request exactly
  once and leak nothing.
"""

import pytest

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.faults import DiskDeath, FaultPlan, FaultyDevice, \
    StragglerDevice
from repro.io import IOKind, IORequest
from repro.node import HedgePolicy, HedgedVolume, StripedVolume, \
    base_topology, build_node, medium_topology
from repro.sim import Simulator
from repro.units import KiB
from repro.workload import ClientFleet, StreamSpec

SIZE = 64 * KiB


def _node(sim, topo=base_topology, seed=7):
    return build_node(sim, topo(disk_spec=WD800JD,
                                rotation_mode=RotationMode.EXPECTED,
                                seed=seed))


def _specs(volume, streams=8):
    spacing = volume.capacity_bytes // streams
    spacing -= spacing % SIZE
    return [StreamSpec(stream_id=i, disk_id=0, start_offset=i * spacing,
                       request_size=SIZE) for i in range(streams)]


def read(offset, size=SIZE, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


def write(offset, size=SIZE):
    return IORequest(kind=IOKind.WRITE, disk_id=0, offset=offset,
                     size=size)


# ---------------------------------------------------------------------------
# Policy validation
# ---------------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(select="fastest")
    with pytest.raises(ValueError):
        HedgePolicy(hedge_k=-1.0)
    with pytest.raises(ValueError):
        HedgePolicy(ewma_alpha=1.5)
    with pytest.raises(ValueError):
        HedgePolicy(latency_window=0)


def test_volume_rejects_bad_members():
    sim = Simulator()
    node = _node(sim)
    with pytest.raises(ValueError):
        HedgedVolume(sim, node, [])
    with pytest.raises(ValueError):
        HedgedVolume(sim, node, [0, 0])
    with pytest.raises(ValueError):
        HedgedVolume(sim, node, [99])


# ---------------------------------------------------------------------------
# Bit-identity: policies off == bare volume
# ---------------------------------------------------------------------------

def _fleet_report(volume_factory):
    sim = Simulator()
    node = _node(sim)
    volume = volume_factory(sim, node)
    server = StreamServer(sim, volume, ServerParams())
    fleet = ClientFleet(sim, server, _specs(volume))
    return fleet.run(duration=1.0)


def test_policies_off_bit_identical_to_striped_volume():
    """HedgedVolume with hedging/EWMA off over one member == a
    single-member StripedVolume: same fleet, same bits."""
    striped = _fleet_report(
        lambda sim, node: StripedVolume(sim, node, [0]))
    hedged = _fleet_report(
        lambda sim, node: HedgedVolume(
            sim, node, [0],
            policy=HedgePolicy(select="roundrobin", hedge=False)))
    assert hedged.total_bytes == striped.total_bytes
    assert hedged.per_stream_bytes == striped.per_stream_bytes
    assert hedged.mean_latency == striped.mean_latency
    assert hedged.p99_latency == striped.p99_latency
    assert hedged.total_errors == striped.total_errors == 0


# ---------------------------------------------------------------------------
# Tail win under a straggler
# ---------------------------------------------------------------------------

def _straggler_run(policy):
    sim = Simulator()
    node = _node(sim, topo=medium_topology)
    adversary = StragglerDevice(sim, node, slowdown=8.0, disk_id=0)
    volume = HedgedVolume(sim, adversary, [0, 1], policy=policy)
    server = StreamServer(sim, volume,
                          ServerParams(dispatch_width=2))
    fleet = ClientFleet(sim, server, _specs(volume))
    return fleet.run(duration=2.0), volume


def test_hedged_beats_round_robin_p99_under_straggler():
    """One 8x-slow mirror member: blind rotation eats the penalty on
    half its fetches; EWMA steering + hedging cuts the tail."""
    blind, _ = _straggler_run(
        HedgePolicy(select="roundrobin", hedge=False))
    hedged, volume = _straggler_run(
        HedgePolicy(select="ewma", hedge=True,
                    hedge_k=2.0, hedge_min_s=5e-3))
    assert hedged.total_errors == blind.total_errors == 0
    assert hedged.p99_latency < blind.p99_latency
    # The win is mechanical, not luck: the EWMA path actually steered
    # and/or hedged away from the straggler.
    stats = volume.stats
    assert stats.counter("completed").count > 0


# ---------------------------------------------------------------------------
# Degraded mode
# ---------------------------------------------------------------------------

def test_dead_member_excluded_without_client_errors():
    sim = Simulator()
    node = _node(sim, topo=medium_topology)
    faulty = FaultyDevice(sim, node, FaultPlan(
        seed=0, deaths=(DiskDeath(disk_id=0, at=0.01),)))
    volume = HedgedVolume(
        sim, faulty, [0, 1],
        policy=HedgePolicy(select="roundrobin", hedge=False))
    server = StreamServer(sim, volume, ServerParams())
    fleet = ClientFleet(sim, server, _specs(volume),
                        tolerate_errors=True)
    report = fleet.run(duration=1.0)
    assert report.total_errors == 0  # the mirror absorbed the death
    assert report.total_bytes > 0
    assert volume.degraded
    assert volume.dead_disks == [0]
    assert volume.stats.counter("redirects").count >= 1


def test_all_members_dead_fails_fast():
    sim = Simulator()
    node = _node(sim, topo=medium_topology)
    volume = HedgedVolume(sim, node, [0, 1])
    volume.mark_disk_dead(0)
    volume.mark_disk_dead(1)
    failed = []
    event = volume.submit(read(0))
    event.callbacks.append(lambda fired: failed.append(fired.ok))
    sim.run()
    assert failed == [False]


# ---------------------------------------------------------------------------
# Hedge bookkeeping
# ---------------------------------------------------------------------------

def test_eager_hedging_completes_each_request_exactly_once():
    """hedge_min_s=0/hedge_k=0 hedges every read that takes any time at
    all; first result wins, the loser is drained and cancelled."""
    sim = Simulator()
    node = _node(sim, topo=medium_topology)
    volume = HedgedVolume(
        sim, node, [0, 1],
        policy=HedgePolicy(select="ewma", hedge=True,
                           hedge_k=0.0, hedge_min_s=0.0))
    completions = []

    def reader():
        for index in range(20):
            request = read(index * SIZE, stream=3)
            yield volume.submit(request)
            completions.append(request.offset)

    sim.process(reader())
    sim.run()
    assert completions == [i * SIZE for i in range(20)]
    stats = volume.stats
    assert stats.counter("completed").count == 20
    issued = stats.counter("hedges_issued").count
    assert issued >= 1
    # Every hedged race resolves with one winner and one drained loser:
    # the cancelled count tracks losers (either copy), never exceeding
    # the number of races, and hedge wins are a subset of the races.
    assert stats.counter("hedges_cancelled").count <= issued
    assert stats.counter("hedges_won").count <= issued
    assert all(count == 0 for count in volume._inflight.values())


def test_write_mirrors_to_every_live_member():
    sim = Simulator()
    node = _node(sim, topo=medium_topology)

    class SpyNode:
        disk_ids = node.disk_ids
        capacity_bytes = node.capacity_bytes
        writes = []

        def submit(self, request):
            if request.kind is IOKind.WRITE:
                SpyNode.writes.append(request.disk_id)
            return node.submit(request)

        def register_buffers(self, count):
            node.register_buffers(count)

    volume = HedgedVolume(sim, SpyNode(), [0, 1])
    done = []
    event = volume.submit(write(0))
    event.callbacks.append(lambda fired: done.append(fired.ok))
    sim.run()
    assert done == [True]
    assert sorted(SpyNode.writes) == [0, 1]
