"""Unit tests for the discrete-event kernel: engine, events, processes."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(3.5)
    sim.run()
    assert sim.now == 3.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_processes_interleave_in_time_order():
    sim = Simulator()
    log = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(worker(sim, "slow", 2.0))
    sim.process(worker(sim, "fast", 1.0))
    sim.run()
    assert log == [(1.0, "fast"), (2.0, "slow")]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    log = []

    def worker(sim, name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in ("a", "b", "c"):
        sim.process(worker(sim, name))
    sim.run()
    assert log == ["a", "b", "c"]


def test_process_return_value_propagates():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    results = []

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append(value)

    sim.process(parent(sim))
    sim.run()
    assert results == [42]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter(sim):
        value = yield gate
        seen.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(2.0)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert seen == [(2.0, "open")]


def test_event_double_trigger_raises():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    from repro.sim.events import EventAlreadyTriggered
    with pytest.raises(EventAlreadyTriggered):
        gate.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    sim = Simulator()
    gate = sim.event()
    with pytest.raises(TypeError):
        gate.fail("not an exception")


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    sim.process(bad(sim))
    with pytest.raises(SimulationError) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_handled_process_exception_does_not_surface():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    caught = []

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError:
            caught.append(True)

    sim.process(parent(sim))
    sim.run()
    assert caught == [True]


def test_yield_non_event_raises_in_process():
    sim = Simulator()

    def confused(sim):
        yield 5  # not an event

    sim.process(confused(sim))
    with pytest.raises(SimulationError) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, TypeError)


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")
    sim.run()
    assert gate.processed
    seen = []

    def late_waiter(sim):
        value = yield gate
        seen.append(value)

    sim.process(late_waiter(sim))
    sim.run()
    assert seen == ["early"]


def test_interrupt_raises_in_target():
    sim = Simulator()
    caught = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((sim.now, interrupt.cause))

    def poker(sim, target):
        yield sim.timeout(1.0)
        target.interrupt("wake up")

    target = sim.process(sleeper(sim))
    sim.process(poker(sim, target))
    sim.run()
    assert caught == [(1.0, "wake up")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.5)

    proc = sim.process(quick(sim))
    sim.run()
    assert not proc.is_alive
    proc.interrupt("ignored")  # must not raise
    sim.run()


def test_all_of_waits_for_all():
    sim = Simulator()
    results = []

    def waiter(sim):
        events = [sim.timeout(1.0, value="a"), sim.timeout(3.0, value="b")]
        mapping = yield sim.all_of(events)
        results.append((sim.now, sorted(mapping.values())))

    sim.process(waiter(sim))
    sim.run()
    assert results == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def waiter(sim):
        events = [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]
        mapping = yield sim.any_of(events)
        results.append((sim.now, list(mapping.values())))

    sim.process(waiter(sim))
    sim.run()
    assert results == [(1.0, ["fast"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    results = []

    def waiter(sim):
        mapping = yield sim.all_of([])
        results.append(mapping)

    sim.process(waiter(sim))
    sim.run()
    assert results == [{}]


def test_run_until_event_returns_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(2.0)
        return "done"

    proc = sim.process(worker(sim))
    assert sim.run_until_event(proc) == "done"
    assert sim.now == 2.0


def test_run_until_event_timeout_error():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(100.0)

    proc = sim.process(worker(sim))
    with pytest.raises(TimeoutError):
        sim.run_until_event(proc, limit=1.0)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 0.0 or sim.peek() == 4.0  # timeout scheduled at +4
    sim.run()
    assert sim.peek() == float("inf")


def test_deterministic_repeat_runs():
    def build_and_run():
        sim = Simulator()
        log = []

        def worker(sim, name, period, count):
            for _ in range(count):
                yield sim.timeout(period)
                log.append((sim.now, name))

        sim.process(worker(sim, "x", 1.0, 5))
        sim.process(worker(sim, "y", 0.7, 7))
        sim.run()
        return log

    assert build_and_run() == build_and_run()
