"""Span causality and latency-attribution invariants (DESIGN.md §7).

The load-bearing pin: a traced end-to-end server run produces one rooted
span tree per client request whose child phases are pairwise disjoint
and tile the root exactly, so the attribution's component sums reconcile
with measured latency — the property that lets ``ext_latency_breakdown``
replace ad-hoc counter accounting.
"""

import pytest

from repro import obs
from repro.core import ServerParams, StreamServer
from repro.disk.drive import DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.disk.specs import DISKSIM_GENERIC
from repro.obs.attribution import COMPONENTS, PHASE_COMPONENTS, attribute
from repro.obs.spans import SpanRecorder, span_trees
from repro.sim import Simulator
from repro.units import KiB
from repro.workload import ClientFleet, StreamSpec

EPSILON = 1e-9


# ---------------------------------------------------------------------------
# SpanRecorder unit behaviour
# ---------------------------------------------------------------------------

def test_recorder_roots_new_traces():
    recorder = SpanRecorder(capacity=None)
    root = recorder.begin("request", "client", 0.0)
    child = recorder.begin("phase", "server", 0.0,
                           trace_id=root.trace_id,
                           parent_id=root.span_id)
    other = recorder.begin("request", "client", 1.0)
    assert root.trace_id != other.trace_id
    assert child.trace_id == root.trace_id
    assert recorder.roots("client") == [root, other]


def test_recorder_capacity_drops_new_spans():
    recorder = SpanRecorder(capacity=3)
    kept = [recorder.begin(f"s{i}", "test", float(i)) for i in range(3)]
    recorder.begin("overflow", "test", 3.0)
    recorder.instant("overflow2", "test", 4.0)
    assert len(recorder) == 3
    assert recorder.dropped == 2
    # The retained prefix keeps its causality intact.
    assert [s.name for s in recorder.spans] == [s.name for s in kept]
    assert "dropped=2" in repr(recorder)


def test_reserved_quota_keeps_category_recording_at_capacity():
    # 2 of the 5 slots are reserved for client roots: disk-phase spans
    # may fill (and overflow) the shared pool without ever displacing a
    # client span.
    recorder = SpanRecorder(capacity=5, reserved={"client": 2})
    for i in range(6):
        recorder.begin(f"d{i}", "disk", float(i))
    clients = [recorder.begin(f"c{i}", "client", 10.0 + i)
               for i in range(2)]
    assert len(recorder) == 5
    # Shared pool = 3 slots -> three disk spans kept, three shed.
    assert [s.name for s in recorder.spans] == \
        ["d0", "d1", "d2", "c0", "c1"]
    assert recorder.dropped == 3
    assert recorder.dropped_by_category == {"disk": 3}
    assert recorder.roots("client") == clients
    assert "shed={'disk': 3}" in repr(recorder)


def test_reserved_category_spills_into_shared_pool():
    # Quota exhausted -> reserved spans compete for shared slots like
    # anyone else (and are counted per category once those run out too).
    recorder = SpanRecorder(capacity=3, reserved={"client": 1})
    for i in range(4):
        recorder.begin(f"c{i}", "client", float(i))
    assert [s.name for s in recorder.spans] == ["c0", "c1", "c2"]
    assert recorder.dropped_by_category == {"client": 1}


def test_reserved_quota_validation():
    with pytest.raises(ValueError, match="negative span quota"):
        SpanRecorder(capacity=10, reserved={"client": -1})
    with pytest.raises(ValueError, match="exceed capacity"):
        SpanRecorder(capacity=10, reserved={"client": 8, "server": 3})
    # Unbounded capacity accepts any quota (it never sheds).
    recorder = SpanRecorder(capacity=None, reserved={"client": 10**9})
    for i in range(4):
        recorder.begin(f"s{i}", "disk", float(i))
    assert len(recorder) == 4 and recorder.dropped == 0


def test_no_reserve_behaves_exactly_like_plain_capacity():
    plain = SpanRecorder(capacity=2)
    unreserved = SpanRecorder(capacity=2, reserved=None)
    for recorder in (plain, unreserved):
        for i in range(4):
            recorder.begin(f"s{i}", "x", float(i))
    assert [s.name for s in plain.spans] == \
        [s.name for s in unreserved.spans]
    assert plain.dropped == unreserved.dropped == 2


def test_obs_context_threads_span_reserved_through():
    import repro.obs as obs
    context = obs.ObsContext(span_capacity=4,
                             span_reserved={"client": 3})
    for i in range(4):
        context.spans.begin(f"d{i}", "disk", float(i))
    span = context.spans.begin("c", "client", 9.0)
    assert span in context.spans.spans
    assert context.spans.dropped_by_category == {"disk": 3}


def test_close_open_marks_truncated():
    recorder = SpanRecorder(capacity=None)
    span = recorder.begin("open", "test", 1.0)
    done = recorder.begin("done", "test", 1.0)
    recorder.end(done, 2.0)
    assert recorder.close_open(5.0) == 1
    assert span.end == 5.0
    assert span.args["truncated"] is True
    assert "truncated" not in (done.args or {})


def test_instant_is_zero_duration():
    recorder = SpanRecorder(capacity=None)
    mark = recorder.instant("mark", "fault", 2.5, args={"k": 1})
    assert mark.start == mark.end == 2.5
    assert mark.duration == 0.0


def test_span_trees_groups_children():
    recorder = SpanRecorder(capacity=None)
    root = recorder.begin("request", "client", 0.0)
    child = recorder.begin("phase", "server", 0.0,
                           trace_id=root.trace_id,
                           parent_id=root.span_id)
    grand = recorder.begin("disk", "disk", 0.0,
                           trace_id=root.trace_id,
                           parent_id=child.span_id)
    trees = span_trees(recorder.spans)
    got_root, children = trees[root.trace_id]
    assert got_root is root
    assert children[root.span_id] == [child]
    assert children[child.span_id] == [grand]


# ---------------------------------------------------------------------------
# End-to-end causality: traced server run
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def traced_run():
    """A small traced end-to-end run: 4 streams over one drive."""
    with obs.activated(obs.ObsContext(span_capacity=None)) as context:
        sim = Simulator()
        drive = DiskDrive(sim, DISKSIM_GENERIC,
                          DriveConfig(rotation_mode=RotationMode.EXPECTED))
        server = StreamServer(sim, drive, ServerParams())
        size = 64 * KiB
        spacing = drive.capacity_bytes // 4
        spacing -= spacing % size
        specs = [StreamSpec(stream_id=i, disk_id=0,
                            start_offset=i * spacing, request_size=size)
                 for i in range(4)]
        fleet = ClientFleet(sim, server, specs)
        report = fleet.run(duration=0.3)
    return context, report, server


def _client_trees(context):
    trees = span_trees(context.spans.spans)
    return {tid: (root, children) for tid, (root, children)
            in trees.items() if root.category == "client"
            and root.end is not None}


def test_one_rooted_tree_per_client_request(traced_run):
    context, report, server = traced_run
    trees = _client_trees(context)
    completed = server.stats.counter("completed").count
    assert completed > 0
    assert len(trees) == completed
    # Every client root got at least one server phase child.
    for _root, children in trees.values():
        assert children, "client request produced no child spans"


def test_child_phases_tile_their_parent(traced_run):
    """Children of any span are disjoint; direct children of the client
    root sum (±ε) to the request latency."""
    context, _report, _server = traced_run
    for root, children in _client_trees(context).values():
        for parent_id, siblings in children.items():
            # disk.readahead deliberately overlaps the completion phase
            # (the drive streams ahead while the host is notified); it
            # is excluded from attribution for the same reason.
            phases = sorted((s for s in siblings
                             if s.end is not None and s.end > s.start
                             and s.name != "disk.readahead"),
                            key=lambda s: s.start)
            for before, after in zip(phases, phases[1:]):
                assert after.start >= before.end - EPSILON, (
                    f"overlapping phases under span {parent_id}: "
                    f"{before} / {after}")
        direct = [s for s in children.get(root.span_id, ())
                  if s.end is not None]
        total = sum(s.duration for s in direct)
        assert total == pytest.approx(root.duration, abs=1e-9), (
            f"direct children do not tile the root: {root}")


def test_attribution_reconciles_exactly(traced_run):
    context, _report, _server = traced_run
    report = attribute(context.spans.spans)
    assert report.requests == len(_client_trees(context))
    assert report.reconciles()
    assigned = sum(report.component_s.values())
    assert assigned == pytest.approx(report.total_latency_s, rel=1e-9)
    # The decomposition is over exactly the documented components.
    assert set(report.component_s) <= set(COMPONENTS)
    # A disk-bound streaming run attributes real time to the device.
    assert (report.component_s.get("transfer", 0.0)
            + report.component_s.get("cache-hit", 0.0)) > 0.0


def test_attribution_mean_matches_fleet_report(traced_run):
    """Span-derived mean latency equals the samplers' (same requests)."""
    context, report, _server = traced_run
    span_report = attribute(context.spans.spans)
    assert span_report.mean_latency_ms == pytest.approx(
        report.mean_latency * 1e3, rel=1e-6)


def test_attribution_since_filters_by_completion(traced_run):
    context, _report, _server = traced_run
    full = attribute(context.spans.spans)
    late = attribute(context.spans.spans, since=0.15)
    assert 0 < late.requests < full.requests
    roots = [r for r in context.spans.roots("client")
             if r.end is not None and r.end >= 0.15]
    assert late.requests == len(roots)


def test_phase_map_covers_instrumented_phases(traced_run):
    """Every non-structural leaf phase the run produced is mapped."""
    context, _report, _server = traced_run
    structural = {"request", "server.fetch", "ctl.fetch", "node.request",
                  "ctl.request", "disk.request", "disk.readahead",
                  "server.direct", "server.memhit", "ctl.cachehit",
                  "gc.cycle"}
    seen = {span.name for span in context.spans.spans}
    unmapped = {name for name in seen
                if name not in PHASE_COMPONENTS and name not in structural}
    assert not unmapped, f"unmapped phase spans: {unmapped}"


def test_controller_waits_recorded_as_ctl_port(ctl_port_run):
    """Admission/port-slot waits surface as ``ctl.port`` queue spans.

    Before this phase existed, time a request spent parked on the
    controller's bounded admission queue or waiting for the per-port
    firmware command slot fell to ``other`` in the latency breakdown.
    """
    spans = ctl_port_run
    waits = [s for s in spans if s.name == "ctl.port"]
    assert waits, "contended controller run recorded no ctl.port spans"
    stages = {s.args["stage"] for s in waits}
    assert "admission" in stages  # queue_depth exceeded
    assert "port" in stages       # one firmware slot per port
    # Recorded after the fact: always closed, never zero-duration.
    assert all(s.end is not None and s.end > s.start for s in waits)
    # Attributed to the queue component, under the request's ctl span.
    assert PHASE_COMPONENTS["ctl.port"] == "queue"
    ctl_ids = {s.span_id for s in spans if s.name == "ctl.request"}
    assert all(s.parent_id in ctl_ids for s in waits)


@pytest.fixture()
def ctl_port_run():
    """A contended controller run: 6 reads, 2 queue slots, 1 port slot."""
    from repro.controller import ControllerSpec, DiskController
    from repro.io import IOKind, IORequest

    with obs.activated(obs.ObsContext(span_capacity=None)) as context:
        sim = Simulator()
        drive = DiskDrive(sim, DISKSIM_GENERIC,
                          DriveConfig(rotation_mode=RotationMode.EXPECTED),
                          name="d0")
        controller = DiskController(sim, ControllerSpec(queue_depth=2),
                                    {0: drive})
        for i in range(6):
            controller.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                        offset=i * 1024 * KiB,
                                        size=64 * KiB))
        sim.run()
    return context.spans.spans


def test_memhit_traces_have_no_disk_spans(traced_run):
    """A memory-served request never descends to the device."""
    context, _report, _server = traced_run
    trees = span_trees(context.spans.spans)
    checked = 0
    for _tid, (root, children) in trees.items():
        if root.category != "client" or root.end is None:
            continue
        names = {s.name for siblings in children.values()
                 for s in siblings}
        if "server.memhit" in names:
            checked += 1
            assert not any(n.startswith("disk.") for n in names)
    assert checked > 0, "run produced no memory-served requests"


def test_readahead_fetches_root_their_own_traces(traced_run):
    context, _report, _server = traced_run
    fetches = [s for s in context.spans.spans
               if s.category == "readahead" and s.parent_id is None]
    assert fetches, "run staged nothing"
    client_traces = {r.trace_id for r in context.spans.roots("client")}
    assert all(f.trace_id not in client_traces for f in fetches)


# ---------------------------------------------------------------------------
# Readahead join: fetch spans <-> the client requests they unblocked
# ---------------------------------------------------------------------------

def test_fetch_spans_join_unblocked_client_requests(traced_run):
    """Both sides of the §5.5 cost join are tagged and agree: each
    completed fetch span counts the requests it unblocked, and each of
    those requests' phase spans names the fetch's trace."""
    context, _report, _server = traced_run
    spans = context.spans.spans
    fetches = [s for s in spans if s.category == "readahead"
               and s.end is not None]
    assert fetches, "traced run issued no coalesced fetches"
    for fetch in fetches:
        assert "unblocked" in (fetch.args or {})
    total_unblocked = sum(fetch.args["unblocked"] for fetch in fetches)
    assert total_unblocked > 0, "no request ever waited on a fetch"
    fetch_traces = {fetch.trace_id for fetch in fetches}
    tagged = [s for s in spans
              if (s.args or {}).get("fetch_trace") is not None]
    assert len(tagged) == total_unblocked
    for span in tagged:
        assert span.category == "server"
        assert span.args["fetch_trace"] in fetch_traces


def test_report_renders_readahead_join_table(traced_run):
    import io

    from repro.obs.report import render

    context, _report, _server = traced_run
    out = io.StringIO()
    render({"type": "meta", "spans": len(context.spans.spans),
            "dropped": 0}, list(context.spans.spans), [], out=out)
    text = out.getvalue()
    assert "readahead fetch join" in text
    assert "unblocked requests" in text
    assert "fetch ms / unblocked" in text
