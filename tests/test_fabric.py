"""Distributed sweep fabric: protocol, determinism, failure handling.

The load-bearing pins (ISSUE 7):

* **byte-identical output** — a fabric run (any worker count, hedging
  as aggressive as it gets) equals the serial sweep exactly; hedging's
  first-result-wins can never change a value because points are pure;
* **crash safety** — a worker killed mid-point loses nothing: the task
  is re-queued (bounded), the fabric respawns, and no partial value is
  ever cached;
* **shared cache** — a cache-cold worker reuses a cache-warm peer's
  result through the coordinator instead of recomputing.
"""

import io
import json
import os
import socket
import time

import pytest

from repro.experiments import SMOKE, executor, fig06_segsize
from repro.experiments.base import ExperimentScale
from repro.experiments.executor import SweepCache, point_key, run_sweep
from repro.experiments.fabric import Fabric, FabricError
from repro.experiments.fabric.protocol import (FrameBuffer, FrameError,
                                               WorkerSpec, parse_address,
                                               parse_spec, recv_msg,
                                               send_msg)
from repro.experiments.fabric.worker import resolve_point_fn

TINY = ExperimentScale("tiny", duration=0.1, warmup=0.02)


# ---------------------------------------------------------------------------
# Point functions the spawned workers import as tests.test_fabric:<name>
# ---------------------------------------------------------------------------

def _cheap_point(scale, params):
    return float(params["x"]) * 2.0 + scale.duration


def _slow_point(scale, params):
    time.sleep(0.25)
    return float(params["x"]) + 0.5


def _nan_point(scale, params):
    return float("nan")


def _die_once_point(scale, params):
    """Kills its worker process on first execution, succeeds on retry."""
    sentinel = params["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(3)
    return 42.0


# ---------------------------------------------------------------------------
# Protocol units (no processes)
# ---------------------------------------------------------------------------

def test_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        message = {"type": "task", "params": {"x": 1.5}, "blob": "y" * 999}
        send_msg(left, message)
        assert recv_msg(right) == message
        left.close()
        assert recv_msg(right) is None  # clean EOF at a frame boundary
    finally:
        right.close()


def test_frame_buffer_reassembles_byte_dribble():
    left, right = socket.socketpair()
    try:
        send_msg(left, {"type": "a"})
        send_msg(left, {"type": "b", "n": 2})
        wire = right.recv(1 << 16)
    finally:
        left.close()
        right.close()
    buffer = FrameBuffer()
    seen = []
    for index in range(len(wire)):
        seen.extend(buffer.feed(wire[index:index + 1]))
    assert [m["type"] for m in seen] == ["a", "b"]


def test_frame_buffer_rejects_oversized_header():
    import struct
    buffer = FrameBuffer()
    with pytest.raises(FrameError):
        buffer.feed(struct.pack("!I", (1 << 31)))


def test_parse_spec_and_address():
    assert parse_spec("4") == WorkerSpec(spawn=4)
    with pytest.raises(ValueError):
        parse_spec("0")
    with pytest.raises(ValueError):
        parse_spec("  ")
    dialed = parse_spec("hostA:7070,hostB:7071")
    assert dialed.spawn == 0
    assert dialed.addresses == (("tcp", ("hostA", 7070)),
                                ("tcp", ("hostB", 7071)))
    assert parse_address("/run/fab.sock") == ("unix", "/run/fab.sock")
    assert parse_address("10.0.0.9:9090") == ("tcp", ("10.0.0.9", 9090))
    with pytest.raises(ValueError):
        parse_address("no-port")


def test_resolve_point_fn_roundtrip():
    spec = f"{_cheap_point.__module__}:{_cheap_point.__qualname__}"
    assert resolve_point_fn(spec) is _cheap_point
    with pytest.raises(ValueError):
        resolve_point_fn("no-colon")
    with pytest.raises(TypeError):
        resolve_point_fn("math:pi")


def test_fabric_resolution_order(monkeypatch):
    monkeypatch.delenv("REPRO_FABRIC", raising=False)
    assert executor._resolve_fabric(None) is None
    assert executor._resolve_fabric(executor.FABRIC_OFF) is None
    sentinel = object()
    assert executor._resolve_fabric(sentinel) is sentinel
    previous = executor.set_default_fabric(sentinel)
    try:
        assert executor._resolve_fabric(None) is sentinel
        # FABRIC_OFF beats both the default and the environment.
        monkeypatch.setenv("REPRO_FABRIC", "4")
        assert executor._resolve_fabric(executor.FABRIC_OFF) is None
    finally:
        executor.set_default_fabric(previous)


def test_run_sweep_falls_back_when_fabric_breaks():
    class BrokenFabric:
        calls = 0

        def run_tasks(self, tasks, keys=None, use_cache=False,
                      trace=None, obs_context=None):
            BrokenFabric.calls += 1
            raise FabricError("fabric unreachable")

    spec = fig06_segsize.sweep()
    serial = run_sweep(spec, TINY, jobs=1, cache=False)
    degraded = run_sweep(spec, TINY, jobs=1, cache=False,
                         fabric=BrokenFabric())
    assert BrokenFabric.calls == 1
    assert serial.as_dict() == degraded.as_dict()


def test_mixed_mode_small_sweeps_skip_the_fabric(monkeypatch):
    """Sweeps under the FABRIC_MIN_POINTS floor run in-process even
    with a fabric configured; REPRO_FABRIC_MIN_POINTS=0 forces the
    fabric for everything."""
    from repro.experiments.executor import Point, SweepSpec

    class CountingFabric:
        def __init__(self):
            self.calls = 0

        def run_tasks(self, tasks, keys=None, use_cache=False,
                      trace=None, obs_context=None):
            self.calls += 1
            return [fn(scale, params) for fn, scale, params in tasks]

    spec = SweepSpec(
        experiment_id="mixed-mode-tiny", title="t", x_label="x",
        y_label="y", point_fn=_cheap_point,
        points=(Point(series="y", x=1, params={"x": 1}),
                Point(series="y", x=2, params={"x": 2})))
    counting = CountingFabric()
    small = run_sweep(spec, TINY, jobs=1, cache=False, fabric=counting)
    assert counting.calls == 0  # 2 pending points < floor of 4
    monkeypatch.setenv("REPRO_FABRIC_MIN_POINTS", "0")
    forced = run_sweep(spec, TINY, jobs=1, cache=False, fabric=counting)
    assert counting.calls == 1
    assert small.as_dict() == forced.as_dict()  # route never changes bits
    # A malformed override is ignored, not fatal: back to the default
    # floor, so the 2-point sweep stays local again.
    monkeypatch.setenv("REPRO_FABRIC_MIN_POINTS", "many")
    run_sweep(spec, TINY, jobs=1, cache=False, fabric=counting)
    assert counting.calls == 1


# ---------------------------------------------------------------------------
# End-to-end: spawned workers
# ---------------------------------------------------------------------------

def _identical(first, second):
    assert first.labels == second.labels
    assert first.as_dict() == second.as_dict()
    for series_a, series_b in zip(first.series, second.series):
        assert series_a.xs == series_b.xs
        assert series_a.ys == series_b.ys  # exact ==, not approx


def test_fabric_matches_serial_bit_identical_smoke():
    """serial == fabric(1) == fabric(4, hedging maximally eager) on a
    SMOKE figure — the ISSUE 7 determinism pin."""
    spec = fig06_segsize.sweep()
    serial = run_sweep(spec, SMOKE, jobs=1, cache=False)
    with Fabric("1") as single:
        one = run_sweep(spec, SMOKE, jobs=1, cache=False, fabric=single)
    # hedge_min_s=0/hedge_k=0 hedges every in-flight point as soon as
    # a worker idles: the most duplicate-heavy schedule possible.
    with Fabric("4", hedge_k=0.0, hedge_min_s=0.0) as hedged:
        four = run_sweep(spec, SMOKE, jobs=1, cache=False, fabric=hedged)
        assert hedged.duplicate_mismatches == 0
    _identical(serial, one)
    _identical(serial, four)


def test_worker_killed_mid_point_requeues_and_never_caches_partial(
        tmp_path):
    coord_root = tmp_path / "coord"
    worker_root = tmp_path / "workers"
    tasks = [(_die_once_point, TINY,
              {"sentinel": str(tmp_path / f"sentinel-{i}")})
             for i in range(2)]
    keys = [point_key(fn, scale, params)
            for fn, scale, params in tasks]
    with Fabric("2", cache_root=str(coord_root),
                worker_env={"REPRO_SWEEP_CACHE": str(worker_root)}
                ) as fabric:
        values = fabric.run_tasks(tasks, keys=keys, use_cache=True)
        assert values == [42.0, 42.0]
        assert fabric.requeued == 2
        assert fabric.workers_lost >= 2
    # The kill happened mid-point: only the completed retry may be
    # cached, and it must be the full value.
    store = SweepCache(str(worker_root))
    for key in keys:
        assert store.get(key) == (True, 42.0)
    # Every file under the shared root is a complete JSON document —
    # no half-written temp garbage survived the crashes.
    for path in worker_root.rglob("*"):
        if path.is_file():
            payload = json.loads(path.read_text())
            assert payload["value"] == 42.0


def test_cold_worker_reuses_warm_peer_result_via_coordinator(tmp_path):
    coord_root = tmp_path / "coord"
    worker_root = tmp_path / "worker"
    task = (_cheap_point, TINY, {"x": 3})
    key = point_key(*task)
    # Another worker's past result lives in the coordinator's store.
    SweepCache(str(coord_root)).put(key, 123.5)
    with Fabric("1", cache_root=str(coord_root),
                worker_env={"REPRO_SWEEP_CACHE": str(worker_root)}
                ) as fabric:
        assert fabric.run_tasks([task], keys=[key],
                                use_cache=True) == [123.5]
        assert fabric.cache_peer_hits == 1
        # The peer hit was copied into the worker's local tier: the
        # second sweep answers without a coordinator round-trip.
        assert fabric.run_tasks([task], keys=[key],
                                use_cache=True) == [123.5]
        assert fabric.cache_local_hits == 1
    assert SweepCache(str(worker_root)).get(key) == (True, 123.5)


def test_computed_result_written_back_to_coordinator_store(tmp_path):
    coord_root = tmp_path / "coord"
    task = (_cheap_point, TINY, {"x": 9})
    key = point_key(*task)
    expected = _cheap_point(TINY, {"x": 9})
    # The worker caches on a *different* disk than the coordinator — the
    # dial-out shape where, without write-back, the coordinator's store
    # never learns computed values.
    with Fabric("1", cache_root=str(coord_root),
                worker_env={"REPRO_SWEEP_CACHE": str(tmp_path / "w1")}
                ) as fabric:
        assert fabric.run_tasks([task], keys=[key],
                                use_cache=True) == [expected]
        assert fabric.cache_writebacks == 1
        assert fabric.stats()["cache_writebacks"] == 1
    # The computed value landed in the coordinator's store...
    assert SweepCache(str(coord_root)).get(key) == (True, expected)
    # ...so a fresh, cache-cold worker peer-hits instead of recomputing.
    with Fabric("1", cache_root=str(coord_root),
                worker_env={"REPRO_SWEEP_CACHE": str(tmp_path / "w2")}
                ) as fabric:
        assert fabric.run_tasks([task], keys=[key],
                                use_cache=True) == [expected]
        assert fabric.cache_peer_hits == 1
        assert fabric.cache_writebacks == 0  # peer hits are not computes


def test_cacheless_and_nan_results_are_not_written_back(tmp_path):
    coord_root = tmp_path / "coord"
    task = (_cheap_point, TINY, {"x": 1})
    with Fabric("1", cache_root=str(coord_root),
                worker_env={"REPRO_SWEEP_CACHE": str(tmp_path / "w")}
                ) as fabric:
        # No keys / cache disabled: nothing may touch the store.
        fabric.run_tasks([task])
        assert fabric.cache_writebacks == 0
        # NaN (the timed-out-point sentinel) is never cached anywhere.
        nan_task = (_nan_point, TINY, {})
        values = fabric.run_tasks([nan_task],
                                  keys=[point_key(*nan_task)],
                                  use_cache=True)
        assert len(values) == 1 and values[0] != values[0]
        assert fabric.cache_writebacks == 0
    assert not (coord_root / "").exists() or not any(
        path.is_file() for path in coord_root.rglob("*"))


def test_authenticated_fabric_runs_points(monkeypatch):
    """Matched secrets: the mutual handshake completes and the fabric
    serves points exactly as an open fabric would."""
    monkeypatch.delenv("REPRO_FABRIC_SECRET", raising=False)
    secret = "tail-latency-pr-secret"
    with Fabric("2", secret=secret) as fabric:
        values = fabric.run_tasks([(_cheap_point, TINY, {"x": i})
                                   for i in range(4)])
    assert values == [_cheap_point(TINY, {"x": i}) for i in range(4)]


def test_secret_mismatch_refuses_workers_before_tasks_flow(monkeypatch):
    """Coordinator and worker with different secrets never exchange a
    task: every worker is refused at the handshake and start() fails."""
    monkeypatch.delenv("REPRO_FABRIC_SECRET", raising=False)
    fabric = Fabric("1", secret="right-secret",
                    worker_env={"REPRO_FABRIC_SECRET": "wrong-secret"})
    try:
        with pytest.raises(FabricError):
            fabric.start()
        assert fabric.completed == 0
    finally:
        fabric.close()


def test_unauthenticated_worker_refused_by_secret_coordinator(
        monkeypatch):
    """A worker with no secret cannot join a secret-holding
    coordinator's fabric (empty env value means auth off)."""
    monkeypatch.delenv("REPRO_FABRIC_SECRET", raising=False)
    fabric = Fabric("1", secret="right-secret",
                    worker_env={"REPRO_FABRIC_SECRET": ""})
    try:
        with pytest.raises(FabricError):
            fabric.start()
    finally:
        fabric.close()


def test_secretless_coordinator_refuses_auth_demanding_worker(
        monkeypatch):
    """The refusal is symmetric: a worker that demands auth is turned
    away by a coordinator that cannot provide it."""
    monkeypatch.delenv("REPRO_FABRIC_SECRET", raising=False)
    fabric = Fabric("1", secret="",
                    worker_env={"REPRO_FABRIC_SECRET": "worker-secret"})
    try:
        with pytest.raises(FabricError):
            fabric.start()
    finally:
        fabric.close()


def test_auth_proof_binds_role_and_nonce():
    from repro.experiments.fabric import auth_proof
    proof = auth_proof("s", "coordinator", "n")
    assert proof != auth_proof("s", "worker", "n")  # role-tagged
    assert proof != auth_proof("s", "coordinator", "m")  # nonce-bound
    assert proof != auth_proof("t", "coordinator", "n")  # keyed
    assert proof == auth_proof("s", "coordinator", "n")  # deterministic


def test_backend_mismatched_worker_is_refused():
    """Cache keys embed the coordinator's event-core token, so a worker
    on a different backend must not serve points."""
    from repro.sim.eventcore import available_backends, resolve_backend
    active = resolve_backend(None)
    others = [b for b in available_backends() if b != active]
    if not others:
        pytest.skip("only one event-core backend available")
    fabric = Fabric("1", worker_env={"REPRO_EVENTCORE": others[0]})
    try:
        with pytest.raises(FabricError):
            fabric.start()
    finally:
        fabric.close()


def test_eager_hedging_first_result_wins_and_telemetry_exports(tmp_path):
    with Fabric("2", hedge_k=0.0, hedge_min_s=0.0) as fabric:
        # One slow task, two workers: the idle worker immediately gets
        # a hedge copy; whichever finishes first wins.
        assert fabric.run_tasks([(_slow_point, TINY, {"x": 7})]) == [7.5]
        assert fabric.hedges_issued >= 1
        assert fabric.duplicate_mismatches == 0
        # A second run on the same fabric: the losing copy's late
        # result (stale run id) must not leak into these values.
        values = fabric.run_tasks([(_cheap_point, TINY, {"x": i})
                                   for i in range(4)])
        assert values == [_cheap_point(TINY, {"x": i}) for i in range(4)]

        trace = tmp_path / "fabric.jsonl"
        fabric.export_telemetry(str(trace), meta={"suite": "unit"})
    from repro.obs.export import read_jsonl
    from repro.obs.report import render
    meta, spans, series = read_jsonl(str(trace))
    assert meta["suite"] == "unit"
    assert spans == []
    names = {record["name"] for record in series}
    assert "fabric.queue_depth" in names
    assert "fabric.hedges_issued" in names
    assert any(name.startswith("fabric.w") and name.endswith(".inflight")
               for name in names)
    out = io.StringIO()
    render(meta, spans, series, out=out)  # span-less log renders fine
    text = out.getvalue()
    assert "telemetry" in text
    assert "fabric.queue_depth" in text
