"""Differential tests: indexed data-plane structures vs. the reference scans.

The fleet-scale data-plane work replaced linear scans in the stream
server's hot paths with indexes (DESIGN.md "data-plane indexes"):

* :class:`~repro.core.buffered_set.BufferedSet` — span indexes behind
  ``find`` / ``find_in_stream`` and an idle heap behind ``collect``.
* :class:`~repro.core.dispatch.DispatchSet` — waiting-id map, per-disk
  FIFOs, and an incremental per-disk load counter behind ``admit_next``.
* :class:`~repro.core.classifier.SequentialClassifier` — gap-bucket
  matching and the activity-ordered idle scan behind the GC.

All of these are advertised as *pure accelerations*: observable results,
tie-breaks, and release/admission order must be bit-identical to the
pre-indexing implementations. This module pins that claim. Each test
embeds the reference implementation (lifted from the git history before
the rewrite) and drives it and the indexed version with identical
seeded, randomized operation sequences, comparing every observable after
every step.

Buffer and stream ids come from module-global counters shared by both
instances, so raw ids interleave between the reference and the indexed
copy; comparisons therefore map objects to per-instance *allocation
ordinals* (the n-th object each instance created), which line up exactly.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional

import pytest

from repro.core.buffered_set import BufferedSet, StreamBuffer
from repro.core.classifier import SequentialClassifier
from repro.core.dispatch import DispatchSet
from repro.core.params import ServerParams
from repro.core.policies import OffsetAwarePolicy, RoundRobinPolicy
from repro.core.stream import StreamQueue, StreamState
from repro.io import IOKind, IORequest

KiB = 1024


# ---------------------------------------------------------------------------
# Reference implementations (pre-indexing, from the git history)
# ---------------------------------------------------------------------------


class _ReferenceBufferedSet:
    """The pre-indexing BufferedSet: linear scans everywhere.

    Reuses the real :class:`StreamBuffer` so allocation semantics match;
    ``find`` is a first-match scan in allocation order, ``collect`` a
    full scan releasing in allocation order.
    """

    def __init__(self, memory_budget: int, on_change=None):
        self.memory_budget = memory_budget
        self.on_change = on_change
        self.in_use = 0
        self._buffers: Dict[int, StreamBuffer] = {}
        self._by_stream: Dict[int, List[int]] = {}
        self.peak_in_use = 0
        self.allocated_total = 0
        self.reclaimed_unread = 0

    def __len__(self):
        return len(self._buffers)

    def can_allocate(self, size):
        return self.in_use + size <= self.memory_budget

    def allocate(self, stream_id, disk_id, offset, size, now):
        if not self.can_allocate(size):
            raise MemoryError("over budget")
        buffer = StreamBuffer(stream_id, disk_id, offset, size, now)
        self._buffers[buffer.buffer_id] = buffer
        self._by_stream.setdefault(stream_id, []).append(buffer.buffer_id)
        self.in_use += size
        self.allocated_total += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        if self.on_change is not None:
            self.on_change(+1)
        return buffer

    def mark_filled(self, buffer, now):
        buffer.filled = True
        buffer.last_access = now
        waiters, buffer.waiters = buffer.waiters, []
        return waiters

    def find(self, disk_id, offset, size):
        for buffer in self._buffers.values():
            if buffer.disk_id == disk_id and buffer.contains(offset, size):
                return buffer
        return None

    def find_in_stream(self, stream_id, offset, size):
        for buffer_id in self._by_stream.get(stream_id, ()):
            buffer = self._buffers[buffer_id]
            if buffer.contains(offset, size):
                return buffer
        return None

    def consume(self, buffer, offset, size, now):
        buffer.last_access = now
        buffer.consumed_until = max(buffer.consumed_until, offset + size)
        if buffer.fully_consumed:
            self._release(buffer)
            return True
        return False

    def _release(self, buffer):
        removed = self._buffers.pop(buffer.buffer_id, None)
        if removed is None:
            return
        self.in_use -= buffer.size
        siblings = self._by_stream.get(buffer.stream_id)
        if siblings is not None:
            siblings.remove(buffer.buffer_id)
            if not siblings:
                del self._by_stream[buffer.stream_id]
        if self.on_change is not None:
            self.on_change(-1)

    def discard(self, buffer):
        waiters, buffer.waiters = buffer.waiters, []
        self._release(buffer)
        return waiters

    def release_stream(self, stream_id):
        reclaimed = 0
        for buffer_id in list(self._by_stream.get(stream_id, [])):
            buffer = self._buffers[buffer_id]
            if not buffer.fully_consumed:
                self.reclaimed_unread += 1
            reclaimed += buffer.size
            self._release(buffer)
        return reclaimed

    def collect(self, now, timeout):
        reclaimed = 0
        for buffer in list(self._buffers.values()):
            if buffer.filled and now - buffer.last_access >= timeout:
                if not buffer.fully_consumed:
                    self.reclaimed_unread += 1
                reclaimed += buffer.size
                self._release(buffer)
        return reclaimed

    def stream_buffers(self, stream_id):
        return [self._buffers[buffer_id]
                for buffer_id in self._by_stream.get(stream_id, [])]


class _ReferenceDispatchSet:
    """The pre-indexing DispatchSet: one global deque, scans throughout."""

    def __init__(self, width, requests_per_residency, policy=None):
        self.width = width
        self.requests_per_residency = requests_per_residency
        self.policy = policy or RoundRobinPolicy()
        self._members: Dict[int, StreamQueue] = {}
        self._waiting: Deque[StreamQueue] = deque()
        self.last_offset: Dict[int, int] = {}
        self.admissions = 0
        self.rotations = 0

    @property
    def members(self):
        return list(self._members.values())

    @property
    def free_slots(self):
        return self.width - len(self._members)

    @property
    def waiting_count(self):
        return len(self._waiting)

    def is_member(self, stream):
        return stream.stream_id in self._members

    def is_waiting(self, stream):
        return any(s.stream_id == stream.stream_id for s in self._waiting)

    def enqueue(self, stream):
        if self.is_member(stream) or self.is_waiting(stream):
            return
        stream.state = StreamState.WAITING
        self._waiting.append(stream)

    def admit_next(self):
        if not self._waiting or self.free_slots <= 0:
            return None
        load: Dict[int, int] = {}
        for member in self._members.values():
            load[member.disk_id] = load.get(member.disk_id, 0) + 1
        lightest = min(load.get(s.disk_id, 0) for s in self._waiting)
        candidates = [s for s in self._waiting
                      if load.get(s.disk_id, 0) == lightest]
        index = self.policy.select(
            candidates, context={"last_offset": self.last_offset})
        stream = candidates[index]
        self._waiting.remove(stream)
        stream.state = StreamState.DISPATCHED
        stream.issued_in_residency = 0
        self._members[stream.stream_id] = stream
        self.admissions += 1
        return stream

    def record_issue(self, stream, offset):
        if not self.is_member(stream):
            raise ValueError(f"{stream!r} not in dispatch set")
        stream.issued_in_residency += 1
        stream.total_issued += 1
        self.last_offset[stream.disk_id] = offset

    def rotate_out(self, stream):
        removed = self._members.pop(stream.stream_id, None)
        if removed is None:
            return
        stream.state = StreamState.BUFFERED
        self.rotations += 1

    def drop_waiting(self, stream):
        try:
            self._waiting.remove(stream)
        except ValueError:
            pass


def _reference_gap_match(classifier: SequentialClassifier,
                         request: IORequest) -> Optional[StreamQueue]:
    """The pre-indexing gap match: first hit scanning every live stream
    in creation order (``streams`` is insertion-ordered)."""
    for stream in classifier.streams.values():
        if stream.matches(request, classifier.params.gap_tolerance) \
                and stream.client_next != request.offset:
            return stream
    return None


def _reference_idle_scan(classifier: SequentialClassifier, now: float,
                         timeout: float) -> List[StreamQueue]:
    """The pre-indexing GC candidate selection: a full scan over every
    live stream, in creation order."""
    return [stream for stream in classifier.streams.values()
            if now - stream.last_activity >= timeout]


# ---------------------------------------------------------------------------
# BufferedSet differential
# ---------------------------------------------------------------------------


def _install_release_log(instance, log):
    original = instance._release

    def recording(buffer):
        log.append(buffer)
        original(buffer)

    instance._release = recording


class _BufferedHarness:
    """Drives a reference and an indexed BufferedSet in lock-step."""

    STREAMS = (1, 2, 3, 4, 5)
    DISKS = (0, 1)

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        budget = 512 * KiB
        self.ref = _ReferenceBufferedSet(budget)
        self.new = BufferedSet(budget)
        self.ref_releases: List[StreamBuffer] = []
        self.new_releases: List[StreamBuffer] = []
        _install_release_log(self.ref, self.ref_releases)
        _install_release_log(self.new, self.new_releases)
        #: id(buffer) -> allocation ordinal, per instance.
        self.ref_ordinals: Dict[int, int] = {}
        self.new_ordinals: Dict[int, int] = {}
        #: ordinal -> (ref_buffer, new_buffer).
        self.pairs: List[tuple] = []
        self.now = 0.0

    def _ordinal(self, ordinals, buffer):
        return None if buffer is None else ordinals[id(buffer)]

    def tick(self):
        self.now += self.rng.uniform(0.0, 0.6)

    def random_range(self):
        offset = self.rng.randrange(0, 24) * (4 * KiB)
        size = self.rng.choice([4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB])
        return offset, size

    def live_ordinals(self) -> List[int]:
        live = sorted(self.ref_ordinals[id(buffer)]
                      for buffer in self.ref._buffers.values())
        live_new = sorted(self.new_ordinals[id(buffer)]
                          for buffer in self.new._buffers.values())
        assert live == live_new
        return live

    # -- operations, applied to both instances identically ------------------
    def op_allocate(self):
        stream_id = self.rng.choice(self.STREAMS)
        disk_id = self.rng.choice(self.DISKS)
        offset, size = self.random_range()
        assert self.ref.can_allocate(size) == self.new.can_allocate(size)
        if not self.ref.can_allocate(size):
            return
        ref_buf = self.ref.allocate(stream_id, disk_id, offset, size,
                                    self.now)
        new_buf = self.new.allocate(stream_id, disk_id, offset, size,
                                    self.now)
        ordinal = len(self.pairs)
        self.ref_ordinals[id(ref_buf)] = ordinal
        self.new_ordinals[id(new_buf)] = ordinal
        self.pairs.append((ref_buf, new_buf))

    def _pick_live(self):
        live = self.live_ordinals()
        if not live:
            return None
        return self.pairs[self.rng.choice(live)]

    def op_fill(self):
        pair = self._pick_live()
        if pair is None:
            return
        ref_buf, new_buf = pair
        self.ref.mark_filled(ref_buf, self.now)
        self.new.mark_filled(new_buf, self.now)

    def op_consume(self):
        pair = self._pick_live()
        if pair is None:
            return
        ref_buf, new_buf = pair
        start = ref_buf.consumed_until
        size = self.rng.choice([4 * KiB, 8 * KiB])
        released_ref = self.ref.consume(ref_buf, start, size, self.now)
        released_new = self.new.consume(new_buf, start, size, self.now)
        assert released_ref == released_new
        assert ref_buf.consumed_until == new_buf.consumed_until

    def op_find(self):
        offset, size = self.random_range()
        disk_id = self.rng.choice(self.DISKS)
        ref_hit = self.ref.find(disk_id, offset, size)
        new_hit = self.new.find(disk_id, offset, size)
        assert self._ordinal(self.ref_ordinals, ref_hit) \
            == self._ordinal(self.new_ordinals, new_hit)

    def op_find_in_stream(self):
        offset, size = self.random_range()
        stream_id = self.rng.choice(self.STREAMS)
        ref_hit = self.ref.find_in_stream(stream_id, offset, size)
        new_hit = self.new.find_in_stream(stream_id, offset, size)
        assert self._ordinal(self.ref_ordinals, ref_hit) \
            == self._ordinal(self.new_ordinals, new_hit)

    def op_collect(self):
        timeout = self.rng.choice([0.25, 0.75, 1.5, 3.0])
        assert self.ref.collect(self.now, timeout) \
            == self.new.collect(self.now, timeout)

    def op_release_stream(self):
        stream_id = self.rng.choice(self.STREAMS)
        assert self.ref.release_stream(stream_id) \
            == self.new.release_stream(stream_id)

    def op_discard(self):
        pair = self._pick_live()
        if pair is None:
            return
        ref_buf, new_buf = pair
        self.ref.discard(ref_buf)
        self.new.discard(new_buf)

    # -- invariants ---------------------------------------------------------
    def check(self):
        assert len(self.ref) == len(self.new)
        assert self.ref.in_use == self.new.in_use
        assert self.ref.peak_in_use == self.new.peak_in_use
        assert self.ref.allocated_total == self.new.allocated_total
        assert self.ref.reclaimed_unread == self.new.reclaimed_unread
        self.live_ordinals()
        # Release ORDER, not just the set: collect/release_stream promise
        # reference ordering (allocation order / oldest first).
        ref_order = [self.ref_ordinals[id(b)] for b in self.ref_releases]
        new_order = [self.new_ordinals[id(b)] for b in self.new_releases]
        assert ref_order == new_order
        for stream_id in self.STREAMS:
            ref_seq = [self.ref_ordinals[id(b)]
                       for b in self.ref.stream_buffers(stream_id)]
            new_seq = [self.new_ordinals[id(b)]
                       for b in self.new.stream_buffers(stream_id)]
            assert ref_seq == new_seq

    OPS = (
        (op_allocate, 30),
        (op_fill, 14),
        (op_consume, 14),
        (op_find, 11),
        (op_find_in_stream, 11),
        (op_collect, 8),
        (op_release_stream, 6),
        (op_discard, 6),
    )

    def run(self, steps: int):
        ops = [op for op, weight in self.OPS for _ in range(weight)]
        for _ in range(steps):
            self.tick()
            self.rng.choice(ops)(self)
            self.check()


@pytest.mark.parametrize("seed", [1, 7, 1009, 42424])
def test_buffered_set_matches_reference_under_random_ops(seed):
    harness = _BufferedHarness(seed)
    harness.run(400)
    # The run must have exercised the interesting paths, not just
    # allocated: something was found, collected, and tie-broken.
    assert harness.ref.allocated_total > 50
    assert harness.ref_releases


def test_buffered_set_find_tie_breaks_to_oldest_overlap():
    """Overlapping spans on one disk: both implementations return the
    oldest (lowest-id) containing buffer."""
    ref = _ReferenceBufferedSet(1024 * KiB)
    new = BufferedSet(1024 * KiB)
    spans = [(0, 64 * KiB), (0, 32 * KiB), (16 * KiB, 16 * KiB),
             (0, 64 * KiB)]
    ref_bufs = [ref.allocate(1, 0, off, size, 0.0) for off, size in spans]
    new_bufs = [new.allocate(1, 0, off, size, 0.0) for off, size in spans]
    for probe_off, probe_size in [(0, 4 * KiB), (16 * KiB, 8 * KiB),
                                  (16 * KiB, 16 * KiB), (48 * KiB, 8 * KiB)]:
        ref_hit = ref.find(0, probe_off, probe_size)
        new_hit = new.find(0, probe_off, probe_size)
        assert ref_bufs.index(ref_hit) == new_bufs.index(new_hit)


# ---------------------------------------------------------------------------
# DispatchSet differential
# ---------------------------------------------------------------------------


class _DispatchHarness:
    """Drives a reference and an indexed DispatchSet in lock-step.

    Each logical stream is a *pair* of StreamQueue objects (one per
    instance) built from identical arguments; the dispatch sets mutate
    stream state, so the instances cannot share objects.
    """

    DISKS = 4

    def __init__(self, seed: int, policy_factory):
        self.rng = random.Random(seed)
        self.ref = _ReferenceDispatchSet(3, 2, policy_factory())
        self.new = DispatchSet(3, 2, policy_factory())
        self.pairs: List[tuple] = []
        self.ref_ordinals: Dict[int, int] = {}
        self.new_ordinals: Dict[int, int] = {}
        self.now = 0.0

    def _ordinal(self, ordinals, stream):
        return None if stream is None else ordinals[id(stream)]

    def op_create_and_enqueue(self):
        disk_id = self.rng.randrange(self.DISKS)
        start = self.rng.randrange(0, 64) * (64 * KiB)
        self.now += self.rng.uniform(0.0, 0.3)
        ref_stream = StreamQueue(disk_id, start, self.now)
        new_stream = StreamQueue(disk_id, start, self.now)
        ordinal = len(self.pairs)
        self.ref_ordinals[id(ref_stream)] = ordinal
        self.new_ordinals[id(new_stream)] = ordinal
        self.pairs.append((ref_stream, new_stream))
        self.ref.enqueue(ref_stream)
        self.new.enqueue(new_stream)

    def op_reenqueue(self):
        if not self.pairs:
            return
        ref_stream, new_stream = self.rng.choice(self.pairs)
        self.ref.enqueue(ref_stream)
        self.new.enqueue(new_stream)

    def op_admit(self):
        ref_admitted = self.ref.admit_next()
        new_admitted = self.new.admit_next()
        assert self._ordinal(self.ref_ordinals, ref_admitted) \
            == self._ordinal(self.new_ordinals, new_admitted)
        if ref_admitted is not None:
            assert ref_admitted.state == new_admitted.state \
                == StreamState.DISPATCHED
            assert ref_admitted.issued_in_residency \
                == new_admitted.issued_in_residency == 0

    def _pick_member(self):
        members = self.ref.members
        if not members:
            return None
        target = self.rng.choice(
            sorted(members, key=lambda s: self.ref_ordinals[id(s)]))
        return self.pairs[self.ref_ordinals[id(target)]]

    def op_record_issue(self):
        pair = self._pick_member()
        if pair is None:
            return
        ref_stream, new_stream = pair
        offset = self.rng.randrange(0, 256) * (4 * KiB)
        self.ref.record_issue(ref_stream, offset)
        self.new.record_issue(new_stream, offset)
        assert ref_stream.issued_in_residency \
            == new_stream.issued_in_residency

    def op_rotate_out(self):
        pair = self._pick_member()
        if pair is None:
            return
        ref_stream, new_stream = pair
        self.ref.rotate_out(ref_stream)
        self.new.rotate_out(new_stream)
        assert ref_stream.state == new_stream.state == StreamState.BUFFERED

    def op_drop_waiting(self):
        if not self.pairs:
            return
        ref_stream, new_stream = self.rng.choice(self.pairs)
        self.ref.drop_waiting(ref_stream)
        self.new.drop_waiting(new_stream)

    def _waiting_ordinals_new(self) -> List[int]:
        by_seq = []
        for per_disk in self.new._waiting_by_disk.values():
            for stream in per_disk.values():
                by_seq.append((self.new._waiting_ids[stream.stream_id],
                               self.new_ordinals[id(stream)]))
        return [ordinal for _seq, ordinal in sorted(by_seq)]

    def check(self):
        assert self.ref.waiting_count == self.new.waiting_count
        assert self.ref.free_slots == self.new.free_slots
        assert self.ref.admissions == self.new.admissions
        assert self.ref.rotations == self.new.rotations
        assert self.ref.last_offset == self.new.last_offset
        # Same membership and the SAME global FIFO order of waiters.
        ref_waiting = [self.ref_ordinals[id(s)] for s in self.ref._waiting]
        assert ref_waiting == self._waiting_ordinals_new()
        ref_members = sorted(self.ref_ordinals[id(s)]
                             for s in self.ref.members)
        new_members = sorted(self.new_ordinals[id(s)]
                             for s in self.new.members)
        assert ref_members == new_members
        for ref_stream, new_stream in self.pairs:
            assert self.ref.is_waiting(ref_stream) \
                == self.new.is_waiting(new_stream)
            assert self.ref.is_member(ref_stream) \
                == self.new.is_member(new_stream)
            assert ref_stream.state == new_stream.state
            assert ref_stream.total_issued == new_stream.total_issued

    OPS = (
        (op_create_and_enqueue, 30),
        (op_admit, 28),
        (op_record_issue, 16),
        (op_rotate_out, 12),
        (op_drop_waiting, 9),
        (op_reenqueue, 5),
    )

    def run(self, steps: int):
        ops = [op for op, weight in self.OPS for _ in range(weight)]
        for _ in range(steps):
            self.rng.choice(ops)(self)
            self.check()


@pytest.mark.parametrize("policy_factory",
                         [RoundRobinPolicy, OffsetAwarePolicy],
                         ids=["round-robin", "offset-aware"])
@pytest.mark.parametrize("seed", [3, 11, 5050])
def test_dispatch_set_matches_reference_under_random_ops(
        seed, policy_factory):
    harness = _DispatchHarness(seed, policy_factory)
    harness.run(400)
    assert harness.ref.admissions > 30
    assert harness.ref.rotations > 10


def test_dispatch_admission_order_interleaves_disks_identically():
    """Deterministic spot check: streams stacked on one disk and spread
    over others admit in the same disk-balanced order in both."""
    ref = _ReferenceDispatchSet(4, 1)
    new = DispatchSet(4, 1)
    layout = [0, 0, 0, 1, 2, 1, 0, 2]
    pairs = []
    for disk_id in layout:
        ref_stream = StreamQueue(disk_id, 0, 0.0)
        new_stream = StreamQueue(disk_id, 0, 0.0)
        pairs.append((ref_stream, new_stream))
        ref.enqueue(ref_stream)
        new.enqueue(new_stream)
    ref_ordinals = {id(s): i for i, (s, _n) in enumerate(pairs)}
    new_ordinals = {id(s): i for i, (_r, s) in enumerate(pairs)}
    admitted = []
    while True:
        ref_stream = ref.admit_next()
        new_stream = new.admit_next()
        if ref_stream is None:
            assert new_stream is None
            break
        assert ref_ordinals[id(ref_stream)] == new_ordinals[id(new_stream)]
        admitted.append(ref_ordinals[id(ref_stream)])
    # Disk-balanced: first four admissions cover disks 0, 1, 2 before
    # stacking a second stream anywhere.
    assert admitted[:3] == [0, 3, 4]


# ---------------------------------------------------------------------------
# Classifier / GC differential (same-instance: index vs. reference scan)
# ---------------------------------------------------------------------------


def _read(disk_id: int, offset: int, size: int = 4 * KiB) -> IORequest:
    return IORequest(kind=IOKind.READ, disk_id=disk_id, offset=offset,
                     size=size)


def test_gap_bucket_match_agrees_with_full_scan():
    """The bucketed near-sequential match returns exactly the stream the
    reference creation-order scan found, across random probes."""
    rng = random.Random(97)
    gap = 32 * KiB
    classifier = SequentialClassifier(ServerParams(gap_tolerance=gap))
    now = 0.0
    streams = []
    for i in range(60):
        now += 0.01
        disk_id = rng.randrange(3)
        # Cluster client_next positions so probe windows overlap several
        # streams (the tie-break case) and straddle bucket boundaries.
        client_next = rng.randrange(0, 48) * (8 * KiB)
        stream = StreamQueue(disk_id, client_next, now)
        classifier._register_stream(stream)
        streams.append(stream)
    for _ in range(500):
        probe = _read(rng.randrange(3), rng.randrange(0, 52) * (8 * KiB))
        expected = _reference_gap_match(classifier, probe)
        assert classifier._match_with_gap(probe) is expected
    # Routing advances streams (reindexing them); agreement must hold
    # after the indexes have churned, and after GC drops.
    for _ in range(200):
        now += 0.01
        target = rng.choice(streams)
        if target.stream_id not in classifier.streams:
            continue
        skip = rng.choice([0, 0, 4 * KiB, gap])
        request = _read(target.disk_id, target.client_next + skip)
        classifier.route(request, now)
    for stream in rng.sample(streams, 15):
        classifier.drop_stream(stream)
    for _ in range(500):
        probe = _read(rng.randrange(3), rng.randrange(0, 64) * (4 * KiB))
        expected = _reference_gap_match(classifier, probe)
        assert classifier._match_with_gap(probe) is expected


def test_idle_candidates_agree_with_full_scan():
    """The activity-ordered idle walk selects exactly the streams the
    reference full scan over ``streams`` selected, in the same order."""
    rng = random.Random(31)
    classifier = SequentialClassifier(ServerParams())
    now = 0.0
    streams = []
    for _ in range(40):
        now += rng.uniform(0.05, 0.4)
        stream = StreamQueue(rng.randrange(4), rng.randrange(256) * (4 * KiB),
                             now)
        classifier._register_stream(stream)
        streams.append(stream)
    # Touch a random subset via real routing (exact continuation), which
    # must move them behind every untouched stream in the idle order.
    for stream in rng.sample(streams, 18):
        now += rng.uniform(0.05, 0.3)
        routed = classifier.route(
            _read(stream.disk_id, stream.client_next), now)
        assert routed is stream
    now += 5.0
    for timeout in [0.5, 2.0, 5.0, 7.0, 100.0]:
        expected = _reference_idle_scan(classifier, now, timeout)
        assert classifier.idle_candidates(now, timeout) == expected
    # Dropping streams (the GC's next move) keeps both views aligned.
    for stream in classifier.idle_candidates(now, 6.0):
        classifier.drop_stream(stream)
    for timeout in [0.5, 2.0, 5.0]:
        expected = _reference_idle_scan(classifier, now, timeout)
        assert classifier.idle_candidates(now, timeout) == expected


def test_idle_candidates_empty_and_boundary_cases():
    classifier = SequentialClassifier(ServerParams())
    assert classifier.idle_candidates(100.0, 1.0) == []
    stream = StreamQueue(0, 0, 10.0)
    classifier._register_stream(stream)
    # Exactly at the threshold counts as idle (>=), matching the
    # reference comparison.
    assert classifier.idle_candidates(11.0, 1.0) == [stream]
    assert classifier.idle_candidates(10.9, 1.0) == []
