"""Tests for the RAID-0 striped volume extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import StripedVolume, base_topology, build_node, \
    medium_topology
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_volume(sim, num_disks=4, chunk=256 * KiB):
    topo = medium_topology if num_disks > 1 else base_topology
    node = build_node(sim, topo(disk_spec=WD800JD,
                                rotation_mode=RotationMode.EXPECTED))
    return StripedVolume(sim, node, node.disk_ids[:num_disks],
                         chunk_bytes=chunk), node


def read(offset, size=64 * KiB, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


# ---------------------------------------------------------------------------
# Address mapping
# ---------------------------------------------------------------------------

def test_mapping_round_robin_over_chunks():
    sim = Simulator()
    volume, _node = make_volume(sim, num_disks=4, chunk=256 * KiB)
    for chunk_index in range(8):
        disk, physical = volume.map_offset(chunk_index * 256 * KiB)
        assert disk == volume.disk_ids[chunk_index % 4]
        assert physical == (chunk_index // 4) * 256 * KiB


def test_mapping_within_chunk_offsets_preserved():
    sim = Simulator()
    volume, _node = make_volume(sim, num_disks=4)
    disk, physical = volume.map_offset(256 * KiB + 10 * KiB)
    assert disk == volume.disk_ids[1]
    assert physical == 10 * KiB


def test_mapping_rejects_out_of_range():
    sim = Simulator()
    volume, _node = make_volume(sim)
    with pytest.raises(ValueError):
        volume.map_offset(-1)
    with pytest.raises(ValueError):
        volume.map_offset(volume.capacity_bytes)


@given(offset_chunks=st.integers(min_value=0, max_value=100_000),
       within=st.integers(min_value=0, max_value=256 * KiB - 1))
@settings(max_examples=60)
def test_property_mapping_is_injective(offset_chunks, within):
    """Distinct virtual offsets never collide on (disk, physical)."""
    sim = Simulator()
    volume, _node = make_volume(sim, num_disks=4)
    virtual = offset_chunks * 256 * KiB + within
    if virtual + 256 * KiB >= volume.capacity_bytes:
        return
    a = volume.map_offset(virtual)
    b = volume.map_offset(virtual + 256 * KiB)  # next chunk
    assert a != b


def test_split_covers_request_exactly():
    sim = Simulator()
    volume, _node = make_volume(sim, num_disks=4, chunk=256 * KiB)
    request = read(100 * KiB, 1 * MiB)  # straddles 5 chunks
    children = volume.split(request)
    assert sum(c.size for c in children) == 1 * MiB
    assert len(children) == 5
    assert all(c.parent is request for c in children)
    # Consecutive children land on consecutive stripe members.
    assert children[0].disk_id != children[1].disk_id


# ---------------------------------------------------------------------------
# I/O behaviour
# ---------------------------------------------------------------------------

def test_striped_read_completes():
    sim = Simulator()
    volume, node = make_volume(sim)
    event = volume.submit(read(0, 1 * MiB))
    sim.run()
    assert event.value.latency > 0
    # All four members saw traffic.
    touched = [d for d in volume.disk_ids
               if node.drive(d).stats.counter("completed").count > 0]
    assert len(touched) == 4


def test_striped_large_read_faster_than_single_disk():
    """One big read engages all spindles: near-linear speed-up."""
    def elapsed(num_disks):
        sim = Simulator()
        volume, _node = make_volume(sim, num_disks=num_disks,
                                    chunk=1 * MiB)
        done = {}

        def client(sim):
            position = 0
            for _ in range(8):
                yield volume.submit(read(position, 8 * MiB))
                position += 8 * MiB
            done["t"] = sim.now

        sim.process(client(sim))
        sim.run()
        return done["t"]

    single = elapsed(1)
    striped = elapsed(4)
    assert striped < single / 2  # at least 2x of the ideal 4x


def test_capacity_is_whole_chunks_times_members():
    sim = Simulator()
    volume, node = make_volume(sim, num_disks=4, chunk=256 * KiB)
    per_disk_chunks = node.capacity_bytes // (256 * KiB)
    assert volume.capacity_bytes == per_disk_chunks * 256 * KiB * 4


def test_submit_beyond_capacity_rejected():
    sim = Simulator()
    volume, _node = make_volume(sim)
    with pytest.raises(ValueError):
        volume.submit(read(volume.capacity_bytes - 64 * KiB, 128 * KiB))


def test_constructor_validation():
    sim = Simulator()
    node = build_node(sim, medium_topology())
    with pytest.raises(ValueError):
        StripedVolume(sim, node, [])
    with pytest.raises(ValueError):
        StripedVolume(sim, node, [0, 0])
    with pytest.raises(ValueError):
        StripedVolume(sim, node, [0, 99])
    with pytest.raises(ValueError):
        StripedVolume(sim, node, [0, 1], chunk_bytes=1000)


def test_stream_server_over_striped_volume():
    """Sequential virtual streams detect and stage over RAID-0."""
    sim = Simulator()
    volume, _node = make_volume(sim, num_disks=4, chunk=256 * KiB)
    server = StreamServer(sim, volume, ServerParams(
        read_ahead=2 * MiB, memory_budget=64 * MiB))
    done = []

    def client(sim):
        offset = 0
        for _ in range(64):
            yield server.submit(read(offset, stream=1))
            offset += 64 * KiB
        done.append(True)

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=60.0)
    assert done == [True]
    assert server.classifier.detected == 1
    assert server.stats.counter("staged_hits").count > 40


def test_write_through_stripe():
    sim = Simulator()
    volume, node = make_volume(sim, num_disks=4, chunk=256 * KiB)
    event = volume.submit(IORequest(kind=IOKind.WRITE, disk_id=0,
                                    offset=0, size=1 * MiB))
    sim.run()
    assert event.processed
    written = sum(node.drive(d).stats.counter("media_write").total_bytes
                  for d in volume.disk_ids)
    assert written == 1 * MiB
