"""SweepCache crash/concurrency hardening (ISSUE 7 satellite).

``SweepCache.put`` promises atomicity against concurrent readers *and*
writers on one root: per-writer temp names (pid + random suffix), fsync
before rename, atomic ``os.replace``. The stress test hammers one root
from two real processes plus the parent and then requires every entry
to be a complete, parseable document — a torn write would surface as a
corrupt-entry eviction (miss) or a stray temp file.
"""

import json
import subprocess
import sys

from repro.experiments.executor import SweepCache

KEYS = [f"stress-key-{i}" for i in range(10)]
ROUNDS = 150

_HAMMER = """
import sys
from repro.experiments.executor import SweepCache

root, writer, rounds = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
cache = SweepCache(root)
keys = [f"stress-key-{i}" for i in range(10)]
for round_ in range(rounds):
    key = keys[round_ % len(keys)]
    cache.put(key, {"writer": writer, "round": round_})
    hit, value = cache.get(key)
    # A concurrent writer may have replaced it, but a reader must never
    # see a torn document: either shape is complete.
    assert hit and set(value) == {"writer", "round"}, value
"""


def test_two_process_put_get_hammer(tmp_path):
    root = tmp_path / "shared"
    children = [subprocess.Popen(
        [sys.executable, "-c", _HAMMER, str(root), str(writer),
         str(ROUNDS)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        for writer in (1, 2)]
    # The parent hammers the same keys concurrently.
    cache = SweepCache(str(root))
    for round_ in range(ROUNDS):
        key = KEYS[round_ % len(KEYS)]
        cache.put(key, {"writer": 0, "round": round_})
        hit, value = cache.get(key)
        assert hit and set(value) == {"writer", "round"}, value
    for child in children:
        _out, err = child.communicate(timeout=120)
        assert child.returncode == 0, err.decode()
    # Steady state: every key readable (which writer won is
    # timing-dependent; the invariant is a complete document), every
    # file on disk parseable, no leaked temp files.
    for key in KEYS:
        hit, value = cache.get(key)
        assert hit and set(value) == {"writer", "round"}
    leftovers = [p for p in root.rglob("*")
                 if p.is_file() and p.name.startswith(".tmp-")]
    assert leftovers == []
    for path in root.rglob("*.json"):
        document = json.loads(path.read_text())
        assert set(document["value"]) == {"writer", "round"}
