"""Failure-injection tests: device faults must surface, not wedge.

A :class:`repro.faults.FaultyDevice` fails selected requests; the
server must propagate the error to exactly the affected clients,
reclaim the staged state, and keep serving everyone else. The second
half covers the server's fault *policies*: bounded retry with seeded
exponential backoff, retry exhaustion, and stream quarantine.
"""

import pytest

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.faults import (
    DeviceError,
    FaultPlan,
    FaultyDevice,
    MediaFault,
    TransientMediaError,
)
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_stack(sim, should_fail=None, plan=None, **param_overrides):
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    if plan is None:
        plan = FaultPlan.from_predicate(
            should_fail, transient=param_overrides.pop("transient", False))
    faulty = FaultyDevice(sim, node, plan)
    server = StreamServer(sim, faulty, ServerParams(
        read_ahead=1 * MiB, memory_budget=32 * MiB, **param_overrides))
    return server, faulty


def read(offset, size=64 * KiB, stream=1):
    return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


def test_direct_path_fault_fails_client_event():
    sim = Simulator()
    server, faulty = make_stack(sim, should_fail=lambda r: True)
    event = server.submit(read(0))
    with pytest.raises(DeviceError):
        sim.run_until_event(event, limit=5.0)
    assert faulty.failures == 1
    assert server.stats.counter("device_errors").count >= 1


def test_fetch_fault_fails_waiting_clients_not_simulation():
    """A failing read-ahead fetch must fail the attached clients and
    leave the simulation healthy."""
    sim = Simulator()
    # Fail only the large (coalesced) fetches; direct 64K requests pass.
    server, faulty = make_stack(
        sim, should_fail=lambda r: r.size > 512 * KiB)
    failures = []
    completions = []

    def client(sim):
        offset = 0
        for _ in range(10):
            event = server.submit(read(offset))
            try:
                yield event
                completions.append(offset)
            except DeviceError:
                failures.append(offset)
                return
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=30.0)
    # The first requests (pre-detection, direct) succeed; the first
    # staged request dies on the injected fetch fault.
    assert len(completions) >= 2
    assert len(failures) == 1
    assert server.buffered.in_use == 0  # aborted buffer reclaimed


def test_other_streams_survive_one_streams_fault():
    sim = Simulator()
    poison_zone = 40 * 10**9  # faults only in the second disk half

    def should_fail(request):
        return request.offset >= poison_zone and request.size > 512 * KiB

    server, _faulty = make_stack(sim, should_fail)
    good, bad = [], []

    def client(sim, start, bucket):
        offset = start
        for _ in range(12):
            try:
                yield server.submit(read(offset, stream=start))
            except DeviceError:
                bucket.append("fault")
                return
            offset += 64 * KiB
        bucket.append("done")

    healthy = sim.process(client(sim, 0, good))
    doomed = sim.process(client(sim, poison_zone, bad))
    sim.run_until_event(sim.all_of([healthy, doomed]), limit=60.0)
    assert good == ["done"]
    assert bad == ["fault"]


def test_stream_recovers_after_transient_fault():
    sim = Simulator()
    state = {"armed": True}

    def should_fail(request):
        if state["armed"] and request.size > 512 * KiB:
            state["armed"] = False  # fail exactly one fetch
            return True
        return False

    server, _faulty = make_stack(sim, should_fail)
    outcomes = []

    def client(sim):
        offset = 0
        for _ in range(20):
            try:
                yield server.submit(read(offset))
                outcomes.append("ok")
            except DeviceError:
                outcomes.append("fault")
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=60.0)
    assert outcomes.count("fault") == 1
    # The stream keeps going after the transient fault.
    assert outcomes[-1] == "ok"
    assert outcomes.count("ok") == 19


# -- retry policy ----------------------------------------------------------

def test_transient_fault_retried_to_success():
    """A transient fault on the first attempt is retried and the client
    never sees it."""
    sim = Simulator()
    server, faulty = make_stack(
        sim, should_fail=lambda r: True, transient=True, max_retries=2)
    event = server.submit(read(0))
    value = sim.run_until_event(event, limit=5.0)
    assert value is not None
    assert faulty.failures == 1  # attempt 0 injected, attempt 1 passed
    assert server.stats.counter("retries").count == 1
    assert server.stats.counter("device_errors").count == 1


def test_retry_exhaustion_surfaces_transient_error():
    """A defect that outlives the retry budget fails the client."""
    sim = Simulator()
    plan = FaultPlan(media=(MediaFault(
        disk_id=0, offset=0, size=64 * KiB, transient=True,
        recover_after=10),))
    server, faulty = make_stack(sim, plan=plan, max_retries=2)
    event = server.submit(read(0))
    with pytest.raises(TransientMediaError):
        sim.run_until_event(event, limit=5.0)
    # 1 initial attempt + 2 retries, all injected.
    assert faulty.failures == 3
    assert server.stats.counter("device_errors").count == 3
    assert server.stats.counter("retries").count == 2


def test_retries_disabled_by_default():
    sim = Simulator()
    server, faulty = make_stack(
        sim, should_fail=lambda r: True, transient=True)
    event = server.submit(read(0))
    with pytest.raises(TransientMediaError):
        sim.run_until_event(event, limit=5.0)
    assert faulty.failures == 1
    assert server.stats.counter("retries").count == 0


def test_backoff_deterministic_per_seed():
    """Same retry_seed => identical jittered backoff schedule."""

    def delays(seed):
        sim = Simulator()
        server, _ = make_stack(sim, should_fail=lambda r: False,
                               retry_seed=seed)
        return [server._backoff_delay(attempt) for attempt in range(1, 9)]

    assert delays(7) == delays(7)
    assert delays(7) != delays(8)
    # Exponential-with-cap envelope: jitter is at most +/-50% around
    # min(base * 2^(attempt-1), cap).
    params = ServerParams()
    for attempt, delay in enumerate(delays(7), start=1):
        nominal = min(params.retry_backoff_s * 2 ** (attempt - 1),
                      params.retry_backoff_cap_s)
        assert 0.5 * nominal <= delay <= 1.5 * nominal


def test_backoff_without_jitter_is_exact():
    sim = Simulator()
    server, _ = make_stack(sim, should_fail=lambda r: False,
                           retry_backoff_s=1e-3,
                           retry_backoff_cap_s=4e-3,
                           retry_backoff_jitter=0.0)
    assert [server._backoff_delay(a) for a in range(1, 6)] == \
        [1e-3, 2e-3, 4e-3, 4e-3, 4e-3]


# -- quarantine ------------------------------------------------------------

def test_quarantine_after_repeated_fetch_failures():
    """A stream whose fetches keep dying is quarantined: its staged
    pages are reclaimed and its client falls back to the direct path."""
    sim = Simulator()
    # Every coalesced fetch fails; direct 64K requests pass.
    server, _faulty = make_stack(
        sim, should_fail=lambda r: r.size > 512 * KiB,
        quarantine_threshold=2)
    outcomes = []

    def client(sim):
        offset = 0
        for _ in range(30):
            try:
                yield server.submit(read(offset))
                outcomes.append("ok")
            except DeviceError:
                outcomes.append("fault")
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=120.0)
    assert len(outcomes) == 30
    report = server.report()
    assert report.quarantined_streams == 1
    # After quarantine the client's requests bypass classification and
    # complete on the (healthy) direct path.
    assert server.stats.counter("quarantine_bypass").count > 0
    assert outcomes[-1] == "ok"
    assert server.buffered.in_use == 0


def test_quarantine_disabled_by_default():
    sim = Simulator()
    server, _faulty = make_stack(
        sim, should_fail=lambda r: r.size > 512 * KiB)
    outcomes = []

    def client(sim):
        offset = 0
        for _ in range(20):
            try:
                yield server.submit(read(offset))
                outcomes.append("ok")
            except DeviceError:
                outcomes.append("fault")
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=120.0)
    assert server.report().quarantined_streams == 0
    assert server.stats.counter("quarantine_bypass").count == 0
