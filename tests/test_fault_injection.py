"""Failure-injection tests: device faults must surface, not wedge.

A wrapper device fails selected requests; the server must propagate the
error to exactly the affected clients, reclaim the staged state, and keep
serving everyone else.
"""

import pytest

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB


class DeviceError(IOError):
    """Injected device failure."""


class FaultyDevice:
    """Wraps a block device, failing requests per a predicate."""

    def __init__(self, sim, inner, should_fail):
        self.sim = sim
        self.inner = inner
        self.should_fail = should_fail
        self.capacity_bytes = inner.capacity_bytes
        self.failures = 0

    def register_buffers(self, count):
        register = getattr(self.inner, "register_buffers", None)
        if register is not None:
            register(count)

    def submit(self, request):
        if self.should_fail(request):
            self.failures += 1
            event = self.sim.event()
            event.fail(DeviceError(f"injected fault on {request!r}"))
            return event
        return self.inner.submit(request)


def make_stack(sim, should_fail):
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    faulty = FaultyDevice(sim, node, should_fail)
    server = StreamServer(sim, faulty, ServerParams(
        read_ahead=1 * MiB, memory_budget=32 * MiB))
    return server, faulty


def read(offset, size=64 * KiB, stream=1):
    return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


def test_direct_path_fault_fails_client_event():
    sim = Simulator()
    server, faulty = make_stack(sim, should_fail=lambda r: True)
    event = server.submit(read(0))
    with pytest.raises(DeviceError):
        sim.run_until_event(event, limit=5.0)
    assert faulty.failures == 1
    assert server.stats.counter("device_errors").count >= 1


def test_fetch_fault_fails_waiting_clients_not_simulation():
    """A failing read-ahead fetch must fail the attached clients and
    leave the simulation healthy."""
    sim = Simulator()
    # Fail only the large (coalesced) fetches; direct 64K requests pass.
    server, faulty = make_stack(
        sim, should_fail=lambda r: r.size > 512 * KiB)
    failures = []
    completions = []

    def client(sim):
        offset = 0
        for _ in range(10):
            event = server.submit(read(offset))
            try:
                yield event
                completions.append(offset)
            except DeviceError:
                failures.append(offset)
                return
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=30.0)
    # The first requests (pre-detection, direct) succeed; the first
    # staged request dies on the injected fetch fault.
    assert len(completions) >= 2
    assert len(failures) == 1
    assert server.buffered.in_use == 0  # aborted buffer reclaimed


def test_other_streams_survive_one_streams_fault():
    sim = Simulator()
    poison_zone = 40 * 10**9  # faults only in the second disk half

    def should_fail(request):
        return request.offset >= poison_zone and request.size > 512 * KiB

    server, _faulty = make_stack(sim, should_fail)
    good, bad = [], []

    def client(sim, start, bucket):
        offset = start
        for _ in range(12):
            try:
                yield server.submit(read(offset, stream=start))
            except DeviceError:
                bucket.append("fault")
                return
            offset += 64 * KiB
        bucket.append("done")

    healthy = sim.process(client(sim, 0, good))
    doomed = sim.process(client(sim, poison_zone, bad))
    sim.run_until_event(sim.all_of([healthy, doomed]), limit=60.0)
    assert good == ["done"]
    assert bad == ["fault"]


def test_stream_recovers_after_transient_fault():
    sim = Simulator()
    state = {"armed": True}

    def should_fail(request):
        if state["armed"] and request.size > 512 * KiB:
            state["armed"] = False  # fail exactly one fetch
            return True
        return False

    server, _faulty = make_stack(sim, should_fail)
    outcomes = []

    def client(sim):
        offset = 0
        for _ in range(20):
            try:
                yield server.submit(read(offset))
                outcomes.append("ok")
            except DeviceError:
                outcomes.append("fault")
            offset += 64 * KiB

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=60.0)
    assert outcomes.count("fault") == 1
    # The stream keeps going after the transient fault.
    assert outcomes[-1] == "ok"
    assert outcomes.count("ok") == 19
