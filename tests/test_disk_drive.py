"""Integration tests for the DiskDrive: timing, cache behaviour, throughput.

These tests pin down the physics the experiments rely on:

* single sequential stream ≈ outer-zone media rate,
* many interleaved streams collapse to seek-bound throughput,
* read-ahead recovers throughput while segments outnumber streams.
"""

import pytest

from repro.disk import DISKSIM_GENERIC, WD800JD, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB, MiB, MS


def make_drive(sim, spec=None, **config_kwargs):
    config = DriveConfig(rotation_mode=RotationMode.EXPECTED,
                         **config_kwargs)
    return DiskDrive(sim, spec or DISKSIM_GENERIC, config=config)


def read(disk_id, offset, size, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=disk_id, offset=offset,
                     size=size, stream_id=stream)


def run_sequential_stream(drive, sim, request_size, total_bytes, offset=0):
    """Synchronous sequential reader; returns elapsed seconds."""
    done = {}

    def client(sim):
        position = offset
        while position < offset + total_bytes:
            request = read(0, position, request_size)
            yield drive.submit(request)
            position += request_size
        done["t"] = sim.now

    sim.process(client(sim))
    sim.run()
    return done["t"]


def test_single_request_timing_includes_mechanics():
    sim = Simulator()
    drive = make_drive(sim)
    event = drive.submit(read(0, 0, 64 * KiB))
    sim.run()
    request = event.value
    # First access: no seek (head at 0), expected rotation 4.17ms,
    # media + command overhead + interface. Must be in single-digit ms.
    assert 3 * MS < request.latency < 12 * MS


def test_cache_hit_faster_than_miss():
    sim = Simulator()
    drive = make_drive(sim)
    first = drive.submit(read(0, 0, 64 * KiB))
    sim.run()
    miss_latency = first.value.latency
    # Same range again: served from cache (demand insert), no mechanics.
    second = drive.submit(read(0, 0, 64 * KiB))
    sim.run()
    hit_latency = second.value.latency
    assert hit_latency < miss_latency / 3
    assert second.value.annotations.get("disk.hit") == "submit"


def test_sequential_single_stream_near_media_rate():
    sim = Simulator()
    drive = make_drive(sim)
    total = 32 * MiB
    elapsed = run_sequential_stream(drive, sim, 64 * KiB, total)
    rate = total / elapsed / MiB
    # Outer zone is 60 MB/s; sync client overhead allows some slack.
    assert 40 < rate <= 62


def test_large_requests_also_near_media_rate():
    sim = Simulator()
    drive = make_drive(sim)
    total = 64 * MiB
    elapsed = run_sequential_stream(drive, sim, 1 * MiB, total)
    rate = total / elapsed / MiB
    assert 45 < rate <= 62


def test_many_streams_collapse_throughput():
    """The paper's Figure 1/4 phenomenon, at drive level."""
    def aggregate_rate(num_streams):
        sim = Simulator()
        # Disable read-ahead so each request pays mechanics (Fig 4 setup).
        spec = DISKSIM_GENERIC.with_cache(read_ahead_bytes=0)
        drive = make_drive(sim, spec)
        spacing = drive.capacity_bytes // num_streams
        spacing -= spacing % (64 * KiB)
        per_stream = 2 * MiB

        def client(sim, base):
            position = base
            while position < base + per_stream:
                yield drive.submit(read(0, position, 64 * KiB))
                position += 64 * KiB

        for stream in range(num_streams):
            sim.process(client(sim, stream * spacing))
        sim.run()
        return num_streams * per_stream / sim.now / MiB

    single = aggregate_rate(1)
    many = aggregate_rate(30)
    assert single > 3 * many  # collapse by >3x


def test_readahead_recovers_interleaved_throughput():
    """Read-ahead amortises the seek while segments outnumber streams."""
    def aggregate_rate(read_ahead_on):
        sim = Simulator()
        spec = DISKSIM_GENERIC.with_cache(
            cache_segments=16,
            read_ahead_bytes=None if read_ahead_on else 0)
        drive = make_drive(sim, spec)
        num_streams, per_stream = 8, 4 * MiB
        spacing = drive.capacity_bytes // num_streams
        spacing -= spacing % (64 * KiB)

        def client(sim, base):
            position = base
            while position < base + per_stream:
                yield drive.submit(read(0, position, 64 * KiB))
                position += 64 * KiB

        for stream in range(num_streams):
            sim.process(client(sim, stream * spacing))
        sim.run()
        return num_streams * per_stream / sim.now / MiB

    with_ra = aggregate_rate(True)
    without_ra = aggregate_rate(False)
    assert with_ra > 2 * without_ra


def test_segment_thrash_destroys_readahead_benefit():
    """Streams > segments: prefetched data evicted before use (Fig 7)."""
    def run(num_segments):
        sim = Simulator()
        spec = DISKSIM_GENERIC.with_cache(cache_bytes=num_segments * 256 * KiB,
                                          cache_segments=num_segments)
        drive = make_drive(sim, spec)
        num_streams, per_stream = 16, 2 * MiB
        spacing = drive.capacity_bytes // num_streams
        spacing -= spacing % (64 * KiB)

        def client(sim, base):
            position = base
            while position < base + per_stream:
                yield drive.submit(read(0, position, 64 * KiB))
                position += 64 * KiB

        for stream in range(num_streams):
            sim.process(client(sim, stream * spacing))
        sim.run()
        return (num_streams * per_stream / sim.now / MiB,
                drive.cache.stats.prefetch_efficiency)

    plentiful_rate, plentiful_eff = run(32)   # segments > streams
    starved_rate, starved_eff = run(8)        # segments < streams
    assert plentiful_rate > 1.5 * starved_rate
    assert plentiful_eff > starved_eff


def test_write_path_completes_and_invalidates():
    sim = Simulator()
    drive = make_drive(sim)
    # Prime cache.
    drive.submit(read(0, 0, 64 * KiB))
    sim.run()
    assert drive.cache.peek(0, 64 * KiB // 512) > 0
    write = IORequest(kind=IOKind.WRITE, disk_id=0, offset=0, size=64 * KiB)
    event = drive.submit(write)
    sim.run()
    assert event.value.latency > 0
    assert drive.cache.peek(0, 64 * KiB // 512) == 0
    assert drive.stats.counter("media_write").total_bytes == 64 * KiB


def test_submit_beyond_capacity_rejected():
    sim = Simulator()
    drive = make_drive(sim)
    with pytest.raises(ValueError):
        drive.submit(read(0, drive.capacity_bytes, 64 * KiB))


def test_queue_reordering_look_beats_fcfs_for_scattered_requests():
    def total_time(policy):
        sim = Simulator()
        spec = DISKSIM_GENERIC.with_cache(read_ahead_bytes=0)
        drive = make_drive(sim, spec, scheduler=policy)
        # Scattered positions submitted at once, serviced as one batch.
        positions = [i * (drive.capacity_bytes // 40) for i in range(32)]
        positions = [p - p % (64 * KiB) for p in positions]
        import random
        random.Random(7).shuffle(positions)
        for position in positions:
            drive.submit(read(0, position, 64 * KiB))
        sim.run()
        return sim.now

    assert total_time("look") < total_time("fcfs")


def test_drive_stats_throughput_accounting():
    sim = Simulator()
    drive = make_drive(sim)
    run_sequential_stream(drive, sim, 64 * KiB, 1 * MiB)
    assert drive.stats.counter("completed").total_bytes == 1 * MiB
    assert drive.throughput(sim.now) == pytest.approx(1 * MiB / sim.now)
    assert drive.busy_time > 0


def test_wd800jd_capacity_and_rates():
    sim = Simulator()
    drive = make_drive(sim, WD800JD)
    assert abs(drive.capacity_bytes - 80e9) / 80e9 < 0.01
    assert drive.mechanics.media_rate_at(0) == pytest.approx(60 * MiB,
                                                             rel=0.02)


def test_deterministic_run_with_seed():
    def run_once():
        sim = Simulator()
        drive = DiskDrive(sim, DISKSIM_GENERIC,
                          config=DriveConfig(seed=123))
        elapsed = run_sequential_stream(drive, sim, 64 * KiB, 4 * MiB,
                                        offset=1 * MiB)
        return elapsed

    assert run_once() == run_once()
