"""Unit tests for seek curve, rotation, and media transfer timing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import Mechanics, RotationMode, SeekModel
from repro.units import MS, SECTOR_BYTES


def make_seek(single=0.8 * MS, average=8.9 * MS, cylinders=50_000):
    return SeekModel(single, average, cylinders)


def test_seek_zero_distance_free():
    assert make_seek().seek_time(0) == 0.0


def test_seek_single_cylinder_calibrated():
    model = make_seek()
    assert model.seek_time(1) == pytest.approx(0.8 * MS, rel=1e-9)


def test_seek_monotone_in_distance():
    model = make_seek()
    times = [model.seek_time(d) for d in (1, 10, 100, 1000, 10_000, 49_999)]
    assert times == sorted(times)


def test_seek_average_matches_random_distance_distribution():
    """Mean seek over the analytic distance distribution ≈ datasheet avg."""
    model = make_seek()
    cylinders = model.max_cylinders
    # Distance density for uniform random endpoints: f(x) = 2(1-x), x=d/C.
    steps = 20_000
    total = 0.0
    for i in range(1, steps + 1):
        x = i / steps
        weight = 2 * (1 - x) / steps
        total += model.seek_time(max(1, int(x * cylinders))) * weight
    assert total == pytest.approx(8.9 * MS, rel=0.02)


def test_seek_full_stroke_realistic():
    model = make_seek()
    # sqrt model with these calibration points gives ~16-17 ms full stroke.
    assert 12 * MS < model.full_stroke_time < 25 * MS


def test_seek_validation():
    with pytest.raises(ValueError):
        SeekModel(0.0, 8.9 * MS, 100)
    with pytest.raises(ValueError):
        SeekModel(9 * MS, 8 * MS, 100)  # avg below single
    with pytest.raises(ValueError):
        SeekModel(1 * MS, 2 * MS, 1)
    with pytest.raises(ValueError):
        make_seek().seek_time(-1)


@given(d1=st.integers(min_value=0, max_value=49_999),
       d2=st.integers(min_value=0, max_value=49_999))
@settings(max_examples=100)
def test_property_seek_monotone(d1, d2):
    model = make_seek()
    lo, hi = sorted((d1, d2))
    assert model.seek_time(lo) <= model.seek_time(hi)


# ---------------------------------------------------------------------------
# Mechanics
# ---------------------------------------------------------------------------

def make_mechanics(mode=RotationMode.EXPECTED, seed=7):
    geo = DiskGeometry(heads=2, zones=[(100, 1000), (100, 600)])
    seek = SeekModel(0.8 * MS, 8.9 * MS, geo.cylinders)
    return Mechanics(geo, rpm=7200.0, seek_model=seek,
                     rotation_mode=mode, seed=seed)


def test_rotation_time():
    mech = make_mechanics()
    assert mech.rotation_time == pytest.approx(60.0 / 7200.0)


def test_rotational_latency_expected_mode():
    mech = make_mechanics(RotationMode.EXPECTED)
    assert mech.rotational_latency() == pytest.approx(mech.rotation_time / 2)


def test_rotational_latency_uniform_mode_bounded_and_seeded():
    mech_a = make_mechanics(RotationMode.UNIFORM, seed=42)
    mech_b = make_mechanics(RotationMode.UNIFORM, seed=42)
    samples_a = [mech_a.rotational_latency() for _ in range(100)]
    samples_b = [mech_b.rotational_latency() for _ in range(100)]
    assert samples_a == samples_b  # deterministic per seed
    assert all(0.0 <= s < mech_a.rotation_time for s in samples_a)
    mean = sum(samples_a) / len(samples_a)
    assert mean == pytest.approx(mech_a.rotation_time / 2, rel=0.3)


def test_media_rate_outer_faster_than_inner():
    mech = make_mechanics()
    outer = mech.media_rate_at(0)
    inner = mech.media_rate_at(mech.geometry.total_sectors - 1)
    assert outer > inner
    # Rate = spt * 512 / rotation_time exactly.
    assert outer == pytest.approx(1000 * SECTOR_BYTES / mech.rotation_time)


def test_transfer_time_scales_with_sectors():
    mech = make_mechanics()
    t1 = mech.transfer_time(0, 100)
    t2 = mech.transfer_time(0, 200)
    assert t2 == pytest.approx(2 * t1)


def test_transfer_time_track_switches():
    geo = DiskGeometry(heads=1, zones=[(10, 100)])
    seek = SeekModel(0.8 * MS, 2.0 * MS, geo.cylinders)
    mech = Mechanics(geo, rpm=6000.0, seek_model=seek,
                     track_switch_time=1 * MS)
    # 250 sectors over 100-sector tracks → 2 boundaries crossed.
    base = 250 * mech.rotation_time / 100
    assert mech.transfer_time(0, 250) == pytest.approx(base + 2 * MS)


def test_transfer_requires_positive_sectors():
    mech = make_mechanics()
    with pytest.raises(ValueError):
        mech.transfer_time(0, 0)


def test_seek_between_same_cylinder_free():
    mech = make_mechanics()
    assert mech.seek_between(0, 1) == 0.0


def test_seek_between_far_lbas_costly():
    mech = make_mechanics()
    far = mech.geometry.total_sectors - 1
    assert mech.seek_between(0, far) > 5 * MS


def test_mechanics_validation():
    geo = DiskGeometry(heads=1, zones=[(10, 100)])
    seek = SeekModel(0.8 * MS, 2.0 * MS, geo.cylinders)
    with pytest.raises(ValueError):
        Mechanics(geo, rpm=0, seek_model=seek)
    with pytest.raises(ValueError):
        Mechanics(geo, rpm=7200, seek_model=seek, track_switch_time=-1)
