"""Tests for workload generation, clients, xdd, and mixed loads."""

import pytest

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.host import BlockLayer, BufferCache, make_scheduler
from repro.io import IOKind
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB
from repro.workload import (
    ClientFleet,
    StreamSpec,
    random_requests,
    run_xdd,
    uniform_streams,
    zipf_requests,
)


# ---------------------------------------------------------------------------
# StreamSpec / uniform_streams
# ---------------------------------------------------------------------------

def test_uniform_streams_spacing_matches_paper():
    specs = uniform_streams(10, [0], disk_capacity=80 * 10**9,
                            request_size=64 * KiB)
    assert len(specs) == 10
    spacing = specs[1].start_offset - specs[0].start_offset
    expected = 80 * 10**9 // 10
    assert abs(spacing - expected) <= 64 * KiB
    assert spacing % (64 * KiB) == 0


def test_uniform_streams_per_disk_and_unique_ids():
    specs = uniform_streams(5, [0, 1, 2], disk_capacity=10 * GiB)
    assert len(specs) == 15
    ids = [s.stream_id for s in specs]
    assert len(set(ids)) == 15
    per_disk = {d: [s for s in specs if s.disk_id == d] for d in (0, 1, 2)}
    assert all(len(group) == 5 for group in per_disk.values())


def test_uniform_streams_validation():
    with pytest.raises(ValueError):
        uniform_streams(0, [0], disk_capacity=GiB)
    with pytest.raises(ValueError):
        uniform_streams(1, [], disk_capacity=GiB)
    with pytest.raises(ValueError):
        uniform_streams(10_000_000, [0], disk_capacity=GiB)


def test_stream_spec_validation():
    with pytest.raises(ValueError):
        StreamSpec(1, 0, 0, request_size=1000)  # unaligned
    with pytest.raises(ValueError):
        StreamSpec(1, 0, 100, request_size=64 * KiB)  # unaligned offset
    with pytest.raises(ValueError):
        StreamSpec(1, 0, 0, request_size=64 * KiB, outstanding=0)
    with pytest.raises(ValueError):
        StreamSpec(1, 0, 0, request_size=64 * KiB, think_time=-1)
    with pytest.raises(ValueError):
        StreamSpec(1, 0, 0, request_size=64 * KiB, total_bytes=0)


# ---------------------------------------------------------------------------
# ClientFleet
# ---------------------------------------------------------------------------

def test_fleet_completes_fixed_bytes():
    sim = Simulator()
    node = build_node(sim, base_topology(
        rotation_mode=RotationMode.EXPECTED))
    specs = uniform_streams(4, [0], node.capacity_bytes,
                            total_bytes=1 * MiB)
    report = ClientFleet(sim, node, specs).run()
    assert report.total_bytes == 4 * MiB
    assert report.num_streams == 4
    assert report.throughput > 0
    assert all(b == 1 * MiB for b in report.per_stream_bytes)


def test_fleet_duration_mode_counts_only_window():
    sim = Simulator()
    node = build_node(sim, base_topology(
        rotation_mode=RotationMode.EXPECTED))
    specs = uniform_streams(2, [0], node.capacity_bytes, total_bytes=None)
    report = ClientFleet(sim, node, specs).run(duration=1.0)
    assert report.elapsed == 1.0
    assert report.total_bytes > 0


def test_fleet_warmup_excluded():
    sim = Simulator()
    node = build_node(sim, base_topology(
        rotation_mode=RotationMode.EXPECTED))
    specs = uniform_streams(1, [0], node.capacity_bytes, total_bytes=None)
    with_warmup = ClientFleet(sim, node, specs)
    report = with_warmup.run(duration=2.0, warmup=1.0)
    # Counted bytes ≈ the 2 s measured window, excluding the warm-up
    # second (~60 MB/s x 2 s, not x 3 s).
    assert 80 * MiB < report.total_bytes < 140 * MiB


def test_fleet_latency_statistics():
    sim = Simulator()
    node = build_node(sim, base_topology(
        rotation_mode=RotationMode.EXPECTED))
    specs = uniform_streams(2, [0], node.capacity_bytes,
                            total_bytes=1 * MiB)
    report = ClientFleet(sim, node, specs).run()
    assert report.mean_latency > 0
    assert report.p99_latency >= report.mean_latency * 0.1


def test_fleet_outstanding_window():
    sim = Simulator()
    node = build_node(sim, base_topology(
        rotation_mode=RotationMode.EXPECTED))
    spec = StreamSpec(stream_id=1, disk_id=0, start_offset=0,
                      request_size=64 * KiB, total_bytes=2 * MiB,
                      outstanding=4)
    report = ClientFleet(sim, node, [spec]).run()
    assert report.total_bytes == 2 * MiB


def test_fleet_think_time_slows_stream():
    def run(think):
        sim = Simulator()
        node = build_node(sim, base_topology(
            rotation_mode=RotationMode.EXPECTED))
        spec = StreamSpec(stream_id=1, disk_id=0, start_offset=0,
                          request_size=64 * KiB, total_bytes=1 * MiB,
                          think_time=think)
        return ClientFleet(sim, node, [spec]).run().elapsed

    assert run(0.01) > run(0.0) + 0.1


def test_fleet_validation():
    sim = Simulator()
    node = build_node(sim, base_topology())
    with pytest.raises(ValueError):
        ClientFleet(sim, node, [])


# ---------------------------------------------------------------------------
# xdd
# ---------------------------------------------------------------------------

def make_xdd_stack(sim, scheduler="noop"):
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(rotation_mode=RotationMode.EXPECTED))
    layer = BlockLayer(sim, drive, make_scheduler(scheduler))
    return BufferCache(sim, layer, capacity_bytes=256 * MiB)


def test_xdd_single_stream():
    sim = Simulator()
    cache = make_xdd_stack(sim)
    report = run_xdd(sim, cache, num_streams=1,
                     per_stream_bytes=2 * MiB)
    assert report.total_bytes == 2 * MiB
    assert report.throughput_mb > 5
    assert report.mean_latency > 0


def test_xdd_spacing_defaults_to_uniform():
    sim = Simulator()
    cache = make_xdd_stack(sim)
    report = run_xdd(sim, cache, num_streams=4, per_stream_bytes=1 * MiB)
    assert report.total_bytes == 4 * MiB


def test_xdd_fixed_spacing_like_figure5():
    sim = Simulator()
    cache = make_xdd_stack(sim)
    report = run_xdd(sim, cache, num_streams=4, per_stream_bytes=1 * MiB,
                     spacing=1 * GiB)
    assert report.total_bytes == 4 * MiB


def test_xdd_validation():
    sim = Simulator()
    cache = make_xdd_stack(sim)
    with pytest.raises(ValueError):
        run_xdd(sim, cache, num_streams=0)
    with pytest.raises(ValueError):
        run_xdd(sim, cache, num_streams=1, per_stream_bytes=1 * KiB)
    with pytest.raises(ValueError):
        run_xdd(sim, cache, num_streams=1, per_stream_bytes=4 * MiB,
                spacing=1 * MiB)  # overlap


# ---------------------------------------------------------------------------
# mixed workloads
# ---------------------------------------------------------------------------

def test_random_requests_aligned_and_in_range():
    requests = random_requests(100, [0, 1], capacity=10 * GiB,
                               request_size=8 * KiB, seed=1)
    assert len(requests) == 100
    for request in requests:
        assert request.offset % (8 * KiB) == 0
        assert request.offset + request.size <= 10 * GiB
        assert request.disk_id in (0, 1)


def test_random_requests_seeded():
    a = random_requests(50, [0], capacity=GiB, seed=9)
    b = random_requests(50, [0], capacity=GiB, seed=9)
    assert [r.offset for r in a] == [r.offset for r in b]


def test_zipf_requests_skewed():
    requests = zipf_requests(2000, [0], capacity=10 * GiB, seed=2)
    from collections import Counter
    counts = Counter(r.offset for r in requests)
    top = counts.most_common(1)[0][1]
    assert top > 2000 * 0.05  # the hottest region dominates


def test_mixed_validation():
    with pytest.raises(ValueError):
        random_requests(0, [0], capacity=GiB)
    with pytest.raises(ValueError):
        random_requests(1, [0], capacity=GiB, request_size=1000)
    with pytest.raises(ValueError):
        zipf_requests(0, [0], capacity=GiB)
    with pytest.raises(ValueError):
        zipf_requests(1, [0], capacity=GiB, skew=1.0)
    with pytest.raises(ValueError):
        zipf_requests(1, [0], capacity=GiB, hot_regions=0)
