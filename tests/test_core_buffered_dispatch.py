"""Tests for the buffered set, dispatch set, and replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BufferedSet,
    DispatchSet,
    OffsetAwarePolicy,
    RoundRobinPolicy,
    make_replacement_policy,
)
from repro.core.stream import StreamQueue, StreamState
from repro.units import KiB, MiB


def stream(disk=0, start=0, now=0.0):
    return StreamQueue(disk_id=disk, start_offset=start, now=now)


# ---------------------------------------------------------------------------
# BufferedSet
# ---------------------------------------------------------------------------

def test_allocate_tracks_memory():
    buffered = BufferedSet(memory_budget=4 * MiB)
    buffer = buffered.allocate(1, 0, 0, 1 * MiB, now=0.0)
    assert buffered.in_use == 1 * MiB
    assert buffered.available == 3 * MiB
    assert not buffer.filled


def test_budget_enforced():
    buffered = BufferedSet(memory_budget=1 * MiB)
    buffered.allocate(1, 0, 0, 1 * MiB, now=0.0)
    assert not buffered.can_allocate(1)
    with pytest.raises(MemoryError):
        buffered.allocate(1, 0, 1 * MiB, 1 * MiB, now=0.0)


def test_mark_filled_returns_waiters():
    buffered = BufferedSet(memory_budget=4 * MiB)
    buffer = buffered.allocate(1, 0, 0, 1 * MiB, now=0.0)
    sentinel = ("request", "event")
    buffer.waiters.append(sentinel)
    waiters = buffered.mark_filled(buffer, now=1.0)
    assert waiters == [sentinel]
    assert buffer.waiters == []
    assert buffer.filled


def test_consume_frees_when_done():
    buffered = BufferedSet(memory_budget=4 * MiB)
    buffer = buffered.allocate(1, 0, 0, 1 * MiB, now=0.0)
    buffered.mark_filled(buffer, now=0.0)
    assert not buffered.consume(buffer, 0, 512 * KiB, now=1.0)
    assert buffered.in_use == 1 * MiB  # partially consumed: still held
    assert buffered.consume(buffer, 512 * KiB, 512 * KiB, now=2.0)
    assert buffered.in_use == 0


def test_find_and_find_in_stream():
    buffered = BufferedSet(memory_budget=8 * MiB)
    buffered.allocate(1, 0, 0, 1 * MiB, now=0.0)
    buffered.allocate(2, 0, 10 * MiB, 1 * MiB, now=0.0)
    assert buffered.find(0, 512 * KiB, 64 * KiB).stream_id == 1
    assert buffered.find(0, 10 * MiB, 64 * KiB).stream_id == 2
    assert buffered.find(1, 0, 64 * KiB) is None  # wrong disk
    assert buffered.find_in_stream(2, 10 * MiB, 64 * KiB) is not None
    assert buffered.find_in_stream(1, 10 * MiB, 64 * KiB) is None


def test_release_stream_reclaims_all():
    buffered = BufferedSet(memory_budget=8 * MiB)
    for i in range(3):
        buffered.allocate(1, 0, i * MiB, 1 * MiB, now=0.0)
    buffered.allocate(2, 0, 100 * MiB, 1 * MiB, now=0.0)
    reclaimed = buffered.release_stream(1)
    assert reclaimed == 3 * MiB
    assert buffered.in_use == 1 * MiB
    assert buffered.reclaimed_unread == 3


def test_collect_reclaims_idle_filled_only():
    buffered = BufferedSet(memory_budget=8 * MiB)
    idle = buffered.allocate(1, 0, 0, 1 * MiB, now=0.0)
    buffered.mark_filled(idle, now=0.0)
    in_flight = buffered.allocate(2, 0, 10 * MiB, 1 * MiB, now=0.0)
    fresh = buffered.allocate(3, 0, 20 * MiB, 1 * MiB, now=9.5)
    buffered.mark_filled(fresh, now=9.5)
    reclaimed = buffered.collect(now=10.0, timeout=4.0)
    assert reclaimed == 1 * MiB           # only the idle filled buffer
    assert buffered.find(0, 10 * MiB, 1) is in_flight
    assert buffered.find(0, 20 * MiB, 1) is fresh


def test_on_change_callback():
    deltas = []
    buffered = BufferedSet(memory_budget=4 * MiB,
                           on_change=deltas.append)
    buffer = buffered.allocate(1, 0, 0, 1 * MiB, now=0.0)
    buffered.mark_filled(buffer, now=0.0)
    buffered.consume(buffer, 0, 1 * MiB, now=1.0)
    assert deltas == [1, -1]


def test_peak_tracking():
    buffered = BufferedSet(memory_budget=8 * MiB)
    a = buffered.allocate(1, 0, 0, 2 * MiB, now=0.0)
    buffered.allocate(1, 0, 2 * MiB, 2 * MiB, now=0.0)
    buffered.mark_filled(a, now=0.0)
    buffered.consume(a, 0, 2 * MiB, now=0.0)
    assert buffered.peak_in_use == 4 * MiB
    assert buffered.in_use == 2 * MiB


def test_validation():
    with pytest.raises(ValueError):
        BufferedSet(memory_budget=-1)
    buffered = BufferedSet(memory_budget=1 * MiB)
    with pytest.raises(ValueError):
        buffered.allocate(1, 0, 0, 0, now=0.0)


@given(sizes=st.lists(st.integers(min_value=1, max_value=256),
                      min_size=1, max_size=60))
@settings(max_examples=40)
def test_property_in_use_never_exceeds_budget(sizes):
    budget = 4096
    buffered = BufferedSet(memory_budget=budget)
    live = []
    for index, size in enumerate(sizes):
        if buffered.can_allocate(size):
            buffer = buffered.allocate(1, 0, index * 1000, size, now=0.0)
            live.append(buffer)
        elif live:
            victim = live.pop(0)
            buffered.mark_filled(victim, now=0.0)
            buffered.consume(victim, victim.offset, victim.size, now=0.0)
        assert 0 <= buffered.in_use <= budget
    assert buffered.in_use == sum(b.size for b in live)


# ---------------------------------------------------------------------------
# DispatchSet
# ---------------------------------------------------------------------------

def test_admit_up_to_width():
    dispatch = DispatchSet(width=2, requests_per_residency=4)
    streams = [stream() for _ in range(3)]
    for s in streams:
        dispatch.enqueue(s)
    assert dispatch.admit_next() is streams[0]
    assert dispatch.admit_next() is streams[1]
    assert dispatch.admit_next() is None  # full
    assert dispatch.waiting_count == 1
    assert dispatch.free_slots == 0


def test_enqueue_idempotent():
    dispatch = DispatchSet(width=1, requests_per_residency=1)
    s = stream()
    dispatch.enqueue(s)
    dispatch.enqueue(s)
    assert dispatch.waiting_count == 1
    dispatch.admit_next()
    dispatch.enqueue(s)  # already a member: no-op
    assert dispatch.waiting_count == 0


def test_residency_accounting_and_rotation():
    dispatch = DispatchSet(width=1, requests_per_residency=2)
    s = stream()
    dispatch.enqueue(s)
    dispatch.admit_next()
    dispatch.record_issue(s, 0)
    assert not dispatch.residency_expired(s)
    dispatch.record_issue(s, 1 * MiB)
    assert dispatch.residency_expired(s)
    dispatch.rotate_out(s)
    assert s.state == StreamState.BUFFERED
    assert dispatch.free_slots == 1
    assert dispatch.rotations == 1


def test_residency_resets_on_readmission():
    dispatch = DispatchSet(width=1, requests_per_residency=1)
    s = stream()
    dispatch.enqueue(s)
    dispatch.admit_next()
    dispatch.record_issue(s, 0)
    dispatch.rotate_out(s)
    dispatch.enqueue(s)
    dispatch.admit_next()
    assert s.issued_in_residency == 0
    assert s.total_issued == 1


def test_record_issue_requires_membership():
    dispatch = DispatchSet(width=1, requests_per_residency=1)
    with pytest.raises(ValueError):
        dispatch.record_issue(stream(), 0)


def test_round_robin_order():
    dispatch = DispatchSet(width=1, requests_per_residency=1,
                           policy=RoundRobinPolicy())
    first, second = stream(start=0), stream(start=100 * MiB)
    dispatch.enqueue(first)
    dispatch.enqueue(second)
    assert dispatch.admit_next() is first


def test_offset_aware_prefers_nearby():
    dispatch = DispatchSet(width=1, requests_per_residency=1,
                           policy=OffsetAwarePolicy())
    dispatch.last_offset[0] = 100 * MiB
    far = stream(start=0)
    near = stream(start=99 * MiB)
    dispatch.enqueue(far)
    dispatch.enqueue(near)
    assert dispatch.admit_next() is near


def test_drop_waiting():
    dispatch = DispatchSet(width=1, requests_per_residency=1)
    s = stream()
    dispatch.enqueue(s)
    dispatch.drop_waiting(s)
    assert dispatch.waiting_count == 0
    dispatch.drop_waiting(s)  # idempotent


def test_dispatch_validation():
    with pytest.raises(ValueError):
        DispatchSet(width=0, requests_per_residency=1)
    with pytest.raises(ValueError):
        DispatchSet(width=1, requests_per_residency=0)


def test_make_replacement_policy():
    assert isinstance(make_replacement_policy("rr"), RoundRobinPolicy)
    assert isinstance(make_replacement_policy("round-robin"),
                      RoundRobinPolicy)
    assert isinstance(make_replacement_policy("offset"), OffsetAwarePolicy)
    with pytest.raises(ValueError):
        make_replacement_policy("lifo")
