"""Unit and property tests for the segmented disk cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.cache import SegmentedCache


def make_cache(segments=4, sectors=100):
    return SegmentedCache(num_segments=segments, segment_sectors=sectors)


def test_empty_cache_misses():
    cache = make_cache()
    assert cache.lookup(0, 10) == 0
    assert cache.stats.misses == 1
    assert cache.stats.hit_ratio == 0.0


def test_insert_then_full_hit():
    cache = make_cache()
    segment = cache.allocate(100)
    cache.fill(segment, 50)
    assert cache.lookup(100, 50) == 50
    assert cache.stats.full_hits == 1
    assert cache.stats.hit_sectors == 50


def test_partial_hit_prefix_only():
    cache = make_cache()
    segment = cache.allocate(100)
    cache.fill(segment, 50)
    # Request extends past cached range: prefix covered.
    assert cache.lookup(120, 50) == 30
    assert cache.stats.partial_hits == 1


def test_lookup_not_at_segment_start():
    cache = make_cache()
    segment = cache.allocate(100)
    cache.fill(segment, 100)
    assert cache.lookup(150, 25) == 25


def test_lookup_before_segment_misses():
    cache = make_cache()
    segment = cache.allocate(100)
    cache.fill(segment, 50)
    assert cache.lookup(90, 20) == 0  # starts before cached data
    assert cache.stats.misses == 1


def test_coverage_chains_contiguous_segments():
    cache = make_cache(segments=2, sectors=100)
    first = cache.allocate(0)
    cache.fill(first, 100)
    second = cache.allocate(100)
    cache.fill(second, 100)
    assert cache.lookup(50, 120) == 120


def test_lru_eviction_order():
    cache = make_cache(segments=2, sectors=10)
    a = cache.allocate(0)
    cache.fill(a, 10)
    b = cache.allocate(100)
    cache.fill(b, 10)
    cache.lookup(0, 10)        # touch A so B is LRU
    cache.allocate(200)        # evicts B
    assert cache.lookup(0, 10) == 10     # A still cached
    assert cache.lookup(100, 10) == 0    # B gone
    assert cache.stats.evictions == 1


def test_eviction_counts_wasted_prefetch():
    cache = make_cache(segments=1, sectors=100)
    segment = cache.allocate(0)
    cache.fill(segment, 20)                  # demand
    cache.fill(segment, 80, prefetch=True)   # read-ahead
    cache.lookup(0, 30)                      # uses 10 of the prefetch
    cache.allocate(500)                      # evicts; 70 prefetched unused
    assert cache.stats.wasted_prefetch_sectors == 70
    assert cache.stats.prefetched_sectors == 80
    assert cache.stats.prefetch_efficiency == pytest.approx(1 - 70 / 80)


def test_fill_overflow_rejected():
    cache = make_cache(segments=1, sectors=10)
    segment = cache.allocate(0)
    cache.fill(segment, 10)
    with pytest.raises(ValueError):
        cache.fill(segment, 1)


def test_fill_on_evicted_segment_rejected():
    cache = make_cache(segments=1, sectors=10)
    segment = cache.allocate(0)
    cache.fill(segment, 5)
    cache.allocate(100)  # evicts segment (reuses the object)
    with pytest.raises(ValueError):
        cache.fill(segment, 1)


def test_invalidate_drops_overlapping():
    cache = make_cache(segments=3, sectors=10)
    for start in (0, 10, 100):
        segment = cache.allocate(start)
        cache.fill(segment, 10)
    cache.invalidate(5, 10)  # overlaps [0,10) and [10,20)
    assert cache.lookup(0, 10) == 0
    assert cache.lookup(10, 10) == 0
    assert cache.lookup(100, 10) == 10
    assert cache.stats.invalidated_sectors == 20


def test_peek_does_not_touch_stats_or_lru():
    cache = make_cache(segments=2, sectors=10)
    a = cache.allocate(0)
    cache.fill(a, 10)
    b = cache.allocate(100)
    cache.fill(b, 10)
    assert cache.peek(0, 10) == 10
    assert cache.stats.lookups == 0
    # LRU untouched: A is still oldest and gets evicted next.
    cache.allocate(200)
    assert cache.peek(0, 10) == 0
    assert cache.peek(100, 10) == 10


def test_space_left_and_capacity():
    cache = make_cache(segments=3, sectors=50)
    assert cache.capacity_sectors == 150
    segment = cache.allocate(0)
    cache.fill(segment, 20)
    assert cache.space_left(segment) == 30


def test_live_segments_and_cached_sectors():
    cache = make_cache(segments=4, sectors=10)
    assert cache.live_segments == 0
    segment = cache.allocate(0)
    cache.fill(segment, 7)
    assert cache.live_segments == 1
    assert cache.cached_sectors() == 7


def test_validation():
    with pytest.raises(ValueError):
        SegmentedCache(0, 10)
    with pytest.raises(ValueError):
        SegmentedCache(1, 0)
    cache = make_cache()
    with pytest.raises(ValueError):
        cache.lookup(0, 0)
    with pytest.raises(ValueError):
        cache.allocate(-1)
    segment = cache.allocate(0)
    with pytest.raises(ValueError):
        cache.fill(segment, -1)


def test_thrashing_when_streams_exceed_segments():
    """The Fig 7 mechanism: more streams than segments → zero reuse."""
    cache = make_cache(segments=4, sectors=100)
    streams = [i * 10_000 for i in range(8)]  # 8 streams, 4 segments
    hits = 0
    for round_number in range(5):
        for base in streams:
            position = base + round_number * 50
            if cache.lookup(position, 50) == 50:
                hits += 1
            else:
                segment = cache.allocate(position)
                cache.fill(segment, 50)
                cache.fill(segment, 50, prefetch=True)
    assert hits == 0  # every stream's segment evicted before reuse
    assert cache.stats.wasted_prefetch_sectors > 0


def test_reuse_when_segments_exceed_streams():
    """Counterpart: fewer streams than segments → prefetch hits."""
    cache = make_cache(segments=8, sectors=100)
    streams = [i * 10_000 for i in range(4)]
    hits = 0
    for round_number in range(4):
        for base in streams:
            position = base + round_number * 50
            if cache.lookup(position, 50) == 50:
                hits += 1
            else:
                segment = cache.allocate(position)
                cache.fill(segment, 50)
                cache.fill(segment, 50, prefetch=True)
    # After the first miss per stream, every second access hits prefetch.
    assert hits >= 4


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=5000),
              st.integers(min_value=1, max_value=64)),
    min_size=1, max_size=200))
@settings(max_examples=50)
def test_property_lookup_never_exceeds_cached(ops):
    """Coverage returned is always <= what was actually inserted there."""
    cache = SegmentedCache(num_segments=4, segment_sectors=64)
    valid = set()
    for start, count in ops:
        covered = cache.lookup(start, count)
        assert 0 <= covered <= count
        # Everything reported covered must have been inserted at some point.
        for sector in range(start, start + covered):
            assert sector in valid
        if covered < count:
            segment = cache.allocate(start)
            fill = min(count, cache.segment_sectors)
            cache.fill(segment, fill)
            valid.update(range(start, start + fill))


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=100))
@settings(max_examples=50)
def test_property_segment_count_bounded(starts):
    cache = SegmentedCache(num_segments=5, segment_sectors=10)
    for start in starts:
        segment = cache.allocate(start * 1000)
        cache.fill(segment, 10)
        assert cache.live_segments <= 5
        assert cache.cached_sectors() <= cache.capacity_sectors
