"""Tests for unit helpers and the I/O request model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io import IOKind, IORequest, stamp_submit
from repro.units import (
    GiB,
    KiB,
    MiB,
    SECTOR_BYTES,
    bytes_to_mb,
    format_rate,
    format_size,
    mb_per_s,
    parse_size,
    sector_bytes,
    sectors,
)


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------

def test_parse_size_suffixes():
    assert parse_size("64K") == 64 * KiB
    assert parse_size("8M") == 8 * MiB
    assert parse_size("1G") == GiB
    assert parse_size("512") == 512
    assert parse_size("512B") == 512
    assert parse_size("2KiB") == 2048
    assert parse_size("1.5K") == 1536
    assert parse_size(4096) == 4096


def test_parse_size_rejects_garbage():
    for bad in ("abc", "1X", "-5K", ""):
        with pytest.raises(ValueError):
            parse_size(bad)
    with pytest.raises(ValueError):
        parse_size(-1)
    with pytest.raises(ValueError):
        parse_size("0.3B")  # not a whole byte count


def test_format_size_round_numbers():
    assert format_size(64 * KiB) == "64K"
    assert format_size(8 * MiB) == "8M"
    assert format_size(GiB) == "1G"
    assert format_size(100) == "100B"
    assert format_size(1536) == "1.5K"


@given(st.integers(min_value=0, max_value=2**50))
def test_format_parse_roundtrip_when_exact(nbytes):
    text = format_size(nbytes)
    if "." not in text:  # exact representations round-trip
        assert parse_size(text) == nbytes


def test_rates():
    assert bytes_to_mb(MiB) == 1.0
    assert mb_per_s(10 * MiB, 2.0) == pytest.approx(5.0)
    assert mb_per_s(10 * MiB, 0.0) == 0.0
    assert format_rate(50 * MiB) == "50.0 MB/s"


def test_sector_conversions():
    assert sectors(1024) == 2
    assert sector_bytes(2) == 1024
    with pytest.raises(ValueError):
        sectors(1000)  # unaligned
    with pytest.raises(ValueError):
        sector_bytes(-1)


# ---------------------------------------------------------------------------
# IORequest
# ---------------------------------------------------------------------------

def read(offset=0, size=64 * KiB, disk=0, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=disk, offset=offset,
                     size=size, stream_id=stream)


def test_request_geometry_helpers():
    request = read(offset=128 * KiB, size=64 * KiB)
    assert request.end == 192 * KiB
    assert request.is_read
    assert request.overlaps(100 * KiB, 50 * KiB)
    assert not request.overlaps(0, 128 * KiB)
    assert request.contains(130 * KiB, 10 * KiB)
    assert not request.contains(100 * KiB, 64 * KiB)


def test_request_adjacency():
    first = read(offset=0, size=64 * KiB)
    second = read(offset=64 * KiB, size=64 * KiB)
    assert second.adjacent_after(first)
    assert not first.adjacent_after(second)
    other_disk = read(offset=64 * KiB, size=64 * KiB, disk=1)
    assert not other_disk.adjacent_after(first)


def test_request_validation():
    with pytest.raises(ValueError):
        read(offset=-512)
    with pytest.raises(ValueError):
        read(size=0)
    with pytest.raises(ValueError):
        read(offset=100)  # unaligned
    with pytest.raises(ValueError):
        read(size=1000)   # unaligned


def test_request_derive_links_parent():
    parent = read(offset=0, size=64 * KiB, stream=5)
    child = parent.derive(0, 1 * MiB)
    assert child.parent is parent
    assert child.stream_id == 5
    assert child.size == 1 * MiB
    assert child.request_id != parent.request_id


def test_request_ids_unique():
    ids = {read().request_id for _ in range(100)}
    assert len(ids) == 100


def test_stamp_submit_first_wins():
    request = read()
    stamp_submit(request, 5.0)
    stamp_submit(request, 9.0)  # later layer: ignored
    assert request.submit_time == 5.0
    request.complete_time = 6.0
    assert request.latency == pytest.approx(1.0)


def test_request_latency():
    request = read()
    request.submit_time = 1.0
    request.complete_time = 1.5
    assert request.latency == pytest.approx(0.5)
