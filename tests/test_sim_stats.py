"""Unit tests for metric primitives and the stats registry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import (
    Counter,
    Histogram,
    IntervalRate,
    LatencySampler,
    StatsRegistry,
    TimeWeightedGauge,
)


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------

def test_counter_accumulates():
    counter = Counter("reads")
    counter.add(100)
    counter.add(200)
    assert counter.count == 2
    assert counter.total_bytes == 300


def test_counter_throughput_and_rate():
    counter = Counter()
    counter.add(1000)
    assert counter.throughput(2.0) == pytest.approx(500.0)
    assert counter.rate(2.0) == pytest.approx(0.5)
    assert counter.throughput(0.0) == 0.0


def test_counter_merge():
    a, b = Counter(), Counter()
    a.add(10)
    b.add(20)
    b.add(30)
    a.merge(b)
    assert a.count == 3
    assert a.total_bytes == 60


# ---------------------------------------------------------------------------
# TimeWeightedGauge
# ---------------------------------------------------------------------------

def test_gauge_time_weighted_mean():
    gauge = TimeWeightedGauge()
    gauge.set(0.0, 0.0)
    gauge.set(1.0, 10.0)   # level 0 for [0,1)
    gauge.set(3.0, 0.0)    # level 10 for [1,3)
    assert gauge.mean(now=4.0) == pytest.approx((0 * 1 + 10 * 2 + 0 * 1) / 4)


def test_gauge_adjust_and_extremes():
    gauge = TimeWeightedGauge()
    gauge.adjust(1.0, +5)
    gauge.adjust(2.0, -3)
    assert gauge.level == 2
    assert gauge.max_level == 5
    assert gauge.min_level == 0


def test_gauge_rejects_time_travel():
    gauge = TimeWeightedGauge()
    gauge.set(5.0, 1.0)
    with pytest.raises(ValueError):
        gauge.set(4.0, 2.0)


# ---------------------------------------------------------------------------
# LatencySampler
# ---------------------------------------------------------------------------

def test_latency_sampler_moments():
    sampler = LatencySampler()
    for value in (1.0, 2.0, 3.0, 4.0):
        sampler.observe(value)
    assert sampler.count == 4
    assert sampler.mean == pytest.approx(2.5)
    assert sampler.min == 1.0
    assert sampler.max == 4.0
    assert sampler.variance == pytest.approx(1.25)


def test_latency_sampler_empty():
    sampler = LatencySampler()
    assert sampler.mean == 0.0
    assert sampler.variance == 0.0
    assert sampler.percentile(0.5) == 0.0


def test_latency_percentile_tracks_distribution():
    sampler = LatencySampler(reservoir=1000)
    for i in range(1000):
        sampler.observe(float(i))
    assert sampler.percentile(0.5) == pytest.approx(500, abs=20)
    assert sampler.percentile(0.0) == 0.0


def test_latency_percentile_range_check():
    sampler = LatencySampler()
    with pytest.raises(ValueError):
        sampler.percentile(1.5)


def test_latency_reservoir_bounded():
    sampler = LatencySampler(reservoir=64)
    for i in range(10_000):
        sampler.observe(float(i % 100))
    assert len(sampler._reservoir) <= 64
    assert sampler.count == 10_000


def test_latency_percentile_exact_below_capacity():
    """With n < reservoir, percentiles are exact order statistics."""
    sampler = LatencySampler(reservoir=4096)
    values = [5.0, 1.0, 3.0, 2.0, 4.0]  # out of order on purpose
    for value in values:
        sampler.observe(value)
    # index = int(q * n) over the sorted reservoir [1..5]
    assert sampler.percentile(0.0) == 1.0
    assert sampler.percentile(0.2) == 2.0
    assert sampler.percentile(0.5) == 3.0
    assert sampler.percentile(0.8) == 5.0
    assert sampler.percentile(1.0) == 5.0  # clamped to last element


def test_latency_single_sample_statistics():
    sampler = LatencySampler()
    sampler.observe(0.125)
    assert sampler.mean == 0.125
    assert sampler.variance == 0.0
    assert sampler.stddev == 0.0
    assert sampler.min == sampler.max == 0.125
    for q in (0.0, 0.5, 0.99, 1.0):
        assert sampler.percentile(q) == 0.125


def test_latency_reservoir_overflow_is_deterministic():
    """Thinning is systematic, not random: identical input streams must
    yield identical reservoirs (and hence identical percentiles), which
    is what keeps the sweep cache / parallel-vs-serial equality exact."""
    def feed(sampler):
        for i in range(50_000):
            sampler.observe(((i * 2654435761) % 10_000) / 1000.0)
        return sampler

    a = feed(LatencySampler(reservoir=256))
    b = feed(LatencySampler(reservoir=256))
    assert a._reservoir == b._reservoir
    for q in (0.1, 0.5, 0.9, 0.99):
        assert a.percentile(q) == b.percentile(q)


def test_latency_overflow_keeps_moments_exact_and_percentiles_sane():
    """Moments are streaming (unaffected by thinning); reservoir
    percentiles stay within the observed range and roughly ordered."""
    sampler = LatencySampler(reservoir=128)
    n = 20_000
    for i in range(n):
        sampler.observe(float(i))
    assert sampler.count == n
    assert sampler.mean == pytest.approx((n - 1) / 2, rel=1e-9)
    assert sampler.min == 0.0
    assert sampler.max == float(n - 1)
    assert len(sampler._reservoir) == 128
    p10, p50, p90 = (sampler.percentile(q) for q in (0.1, 0.5, 0.9))
    assert 0.0 <= p10 <= p50 <= p90 <= float(n - 1)


def test_latency_stride_growth_bounded():
    """The thinning stride doubles but is capped, so late samples are
    still admitted (the reservoir never freezes permanently)."""
    sampler = LatencySampler(reservoir=4)
    for i in range(10_000):
        sampler.observe(float(i))
    assert sampler._stride <= 1 << 20
    assert any(value >= 4.0 for value in sampler._reservoir), \
        "reservoir froze on the first four samples"


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_latency_mean_matches_numpy_style_mean(values):
    sampler = LatencySampler()
    for value in values:
        sampler.observe(value)
    assert sampler.mean == pytest.approx(sum(values) / len(values), rel=1e-9,
                                         abs=1e-9)
    assert sampler.min == min(values)
    assert sampler.max == max(values)


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------

def test_histogram_buckets_and_overflow():
    hist = Histogram(bounds=[1.0, 2.0, 4.0])
    for value in (0.5, 1.5, 3.0, 10.0):
        hist.observe(value)
    assert hist.counts == [1, 1, 1]
    assert hist.overflow == 1
    assert hist.total == 4


def test_histogram_boundary_inclusive():
    hist = Histogram(bounds=[1.0, 2.0])
    hist.observe(1.0)  # inclusive upper of first bucket
    assert hist.counts == [1, 0]


def test_histogram_rows_include_overflow():
    hist = Histogram(bounds=[1.0])
    hist.observe(5.0)
    rows = hist.as_rows()
    assert rows[-1][0] == math.inf
    assert rows[-1][1] == 1


def test_histogram_requires_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=[])


# ---------------------------------------------------------------------------
# IntervalRate
# ---------------------------------------------------------------------------

def test_interval_rate_windows():
    rate = IntervalRate(interval=1.0)
    rate.record(0.5, 100)
    rate.record(0.9, 100)
    rate.record(1.5, 300)
    rows = dict(rate.rates())
    assert rows[0.0] == pytest.approx(200.0)
    assert rows[1.0] == pytest.approx(300.0)


def test_interval_rate_steady_skips_warmup():
    rate = IntervalRate(interval=1.0)
    rate.record(0.5, 1000)   # warm-up window
    rate.record(1.5, 100)
    rate.record(2.5, 100)
    assert rate.steady_rate(skip_windows=1) == pytest.approx(100.0)


def test_interval_rate_validation():
    with pytest.raises(ValueError):
        IntervalRate(interval=0)


# ---------------------------------------------------------------------------
# StatsRegistry
# ---------------------------------------------------------------------------

def test_registry_reuses_named_metrics():
    registry = StatsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.latency("l") is registry.latency("l")


def test_registry_snapshot_shape():
    registry = StatsRegistry()
    registry.counter("io").add(512)
    registry.gauge("queue").set(1.0, 3)
    registry.latency("lat").observe(0.01)
    snap = registry.snapshot()
    assert snap["io.count"] == 1
    assert snap["io.bytes"] == 512
    assert snap["queue.level"] == 3
    assert snap["lat.n"] == 1
