"""Tests for the experiment registry, runner CLI, and base helpers.

The figure runners themselves are exercised by ``benchmarks/``; here we
cover the plumbing: registry completeness, CLI argument handling, stream
spreading, and the tiny end-to-end smoke of one cheap figure.
"""

import pytest

from repro.experiments import EXPERIMENTS, FULL, QUICK, SMOKE
from repro.experiments.base import spread_streams
from repro.experiments.runner import main
from repro.units import GiB, KiB


def test_registry_covers_every_paper_figure():
    expected = {"fig01", "fig02", "fig04", "fig05", "fig06", "fig07",
                "fig08", "fig10", "fig11", "fig12", "fig13", "fig14",
                "fig15"}
    assert set(EXPERIMENTS) == expected


def test_scales_ordered():
    assert SMOKE.duration < QUICK.duration < FULL.duration
    assert SMOKE.warmup < QUICK.warmup < FULL.warmup


def test_spread_streams_round_robin_over_disks():
    specs = spread_streams(10, disk_ids=[0, 1, 2],
                           disk_capacity=10 * GiB)
    assert len(specs) == 10
    disks = [s.disk_id for s in specs]
    assert disks[:6] == [0, 1, 2, 0, 1, 2]
    # Per-disk stream counts differ by at most one.
    counts = {d: disks.count(d) for d in (0, 1, 2)}
    assert max(counts.values()) - min(counts.values()) <= 1


def test_spread_streams_offsets_spaced():
    specs = spread_streams(6, disk_ids=[0, 1], disk_capacity=10 * GiB)
    disk0 = sorted(s.start_offset for s in specs if s.disk_id == 0)
    assert disk0[0] == 0
    assert disk0[1] > 1 * GiB  # ~capacity / ceil(6/2)
    for offset in disk0:
        assert offset % (64 * KiB) == 0


def test_spread_streams_validation():
    with pytest.raises(ValueError):
        spread_streams(0, [0], GiB)
    with pytest.raises(ValueError):
        spread_streams(1, [], GiB)
    with pytest.raises(ValueError):
        spread_streams(10**9, [0], GiB)


def test_runner_cli_single_cheap_figure(capsys):
    exit_code = main(["fig06", "--scale", "smoke"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "fig06" in output
    assert "MBytes/s" in output
    assert "segment size" in output


def test_runner_cli_rejects_unknown_figure(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_runner_cli_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        main(["fig06", "--scale", "galactic"])


def test_experiment_results_are_reproducible():
    """Same figure, same scale → identical numbers (seeded RNG).

    ``cache=False`` so both runs genuinely re-simulate — a cache hit
    would make this test vacuous.
    """
    from repro.experiments.fig06_segsize import run
    first = run(SMOKE, cache=False).as_dict()
    second = run(SMOKE, cache=False).as_dict()
    assert first == second
