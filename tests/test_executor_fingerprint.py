"""Per-module cache fingerprints and spawn-safe pool workers.

Satellites of the kernel PR: cache keys must track only the modules a
figure actually imports (editing an unimported module keeps entries
warm), and the worker pool must be pickle-clean so forcing the
``spawn`` start method still yields byte-identical sweeps.
"""

import multiprocessing
import sys
import textwrap

import pytest

from repro.experiments import SMOKE, fig05_xdd_single, fig06_segsize
from repro.experiments import executor
from repro.experiments.base import ExperimentScale
from repro.experiments.executor import (
    Point,
    SweepSpec,
    code_fingerprint_for,
    import_closure,
    point_key,
    run_sweep,
)

TINY = ExperimentScale("tiny", duration=0.1, warmup=0.02)


# -- fake package fixture --------------------------------------------------

PKG = "fingerprintpkg"

PKG_FILES = {
    # Aggregator __init__ mirroring repro.experiments: imports every
    # figure to build a registry. Must NOT drag figb into figa's key.
    "__init__.py": f"""
        from {PKG} import figa, figb
        REGISTRY = {{"a": figa.point, "b": figb.point}}
    """,
    "dep.py": """
        def factor():
            return 2.0
    """,
    "figa.py": f"""
        from {PKG}.dep import factor

        def point(scale, params):
            return factor() * params["value"]
    """,
    "figb.py": """
        def point(scale, params):
            return float(params["value"])
    """,
    "unrelated.py": """
        def unused():
            return "nobody imports me"
    """,
}


@pytest.fixture
def fake_pkg(tmp_path, monkeypatch):
    """An importable throwaway package the tests can edit on disk."""
    root = tmp_path / PKG
    root.mkdir()
    for name, source in PKG_FILES.items():
        (root / name).write_text(textwrap.dedent(source))
    monkeypatch.syspath_prepend(str(tmp_path))
    executor._fingerprint_cache_clear()
    yield root
    executor._fingerprint_cache_clear()
    for name in [m for m in sys.modules
                 if m == PKG or m.startswith(PKG + ".")]:
        del sys.modules[name]


def _edit(path, suffix="\n# edited\n"):
    path.write_text(path.read_text() + suffix)
    executor._fingerprint_cache_clear()


# -- import closure --------------------------------------------------------

def test_import_closure_follows_only_actual_imports(fake_pkg):
    closure = import_closure(f"{PKG}.figa", package=PKG)
    assert f"{PKG}.figa" in closure
    assert f"{PKG}.dep" in closure
    assert PKG in closure  # ancestor __init__ executes at import time
    assert f"{PKG}.figb" not in closure  # aggregator not traversed
    assert f"{PKG}.unrelated" not in closure


def test_import_closure_of_real_figure_is_scoped():
    """fig06's closure covers the sim stack but not other figures."""
    closure = import_closure("repro.experiments.fig06_segsize")
    assert "repro.experiments.fig06_segsize" in closure
    assert "repro.experiments.executor" in closure
    assert "repro.disk.specs" in closure
    assert "repro.sim.engine" in closure  # via the measurement stack
    # Sibling figures are reachable only through the package
    # aggregator, which is digested but never traversed.
    assert "repro.experiments.fig05_xdd_single" not in closure
    assert "repro.experiments.fig12_multidisk" not in closure


def test_unimported_edit_keeps_fingerprint_stable(fake_pkg):
    sys.path_importer_cache.clear()
    import importlib
    figa = importlib.import_module(f"{PKG}.figa")
    base = code_fingerprint_for(figa.point)

    _edit(fake_pkg / "unrelated.py")
    assert code_fingerprint_for(figa.point) == base

    _edit(fake_pkg / "figb.py")  # sibling figure: still warm
    assert code_fingerprint_for(figa.point) == base

    _edit(fake_pkg / "dep.py")  # actually imported: invalidates
    assert code_fingerprint_for(figa.point) != base

    _edit(fake_pkg / "figa.py")  # the figure itself: invalidates
    assert code_fingerprint_for(figa.point) != base


def test_aggregator_init_edit_invalidates(fake_pkg):
    """Ancestor __init__ runs at import time, so its digest counts."""
    import importlib
    figa = importlib.import_module(f"{PKG}.figa")
    base = code_fingerprint_for(figa.point)
    _edit(fake_pkg / "__init__.py")
    assert code_fingerprint_for(figa.point) != base


def test_unimported_edit_keeps_cache_entries_warm(fake_pkg, tmp_path):
    """End to end: the on-disk sweep cache survives unrelated edits."""
    import importlib
    figa = importlib.import_module(f"{PKG}.figa")
    spec = SweepSpec(
        experiment_id="fp", title="t", x_label="x", y_label="y",
        point_fn=figa.point,
        points=(Point(series="s", x=1, params={"value": 3}),))
    cache_root = tmp_path / "cache"

    before = executor.simulated_points()
    run_sweep(spec, TINY, jobs=1, cache_root=cache_root)
    assert executor.simulated_points() - before == 1

    _edit(fake_pkg / "unrelated.py")
    run_sweep(spec, TINY, jobs=1, cache_root=cache_root)
    assert executor.simulated_points() - before == 1, \
        "editing an unimported module re-simulated a cached point"

    _edit(fake_pkg / "dep.py")
    run_sweep(spec, TINY, jobs=1, cache_root=cache_root)
    assert executor.simulated_points() - before == 2, \
        "editing an imported module must invalidate the entry"


def test_point_key_uses_closure_fingerprint():
    """Keys for different figures embed different code fingerprints."""
    fp05 = code_fingerprint_for(fig05_xdd_single._point)
    fp06 = code_fingerprint_for(fig06_segsize._point)
    assert fp05 != fp06  # the figure module itself is in its closure
    # Stable across calls (memoised and deterministic).
    assert code_fingerprint_for(fig06_segsize._point) == fp06
    key = point_key(fig06_segsize._point, TINY, {"segment_size": 1024})
    assert key == point_key(fig06_segsize._point, TINY,
                            {"segment_size": 1024})


def test_fingerprint_incorporates_event_core_backend(monkeypatch):
    """Flipping REPRO_EVENTCORE must miss the sweep cache.

    The backends are pinned bit-identical by the equivalence suite, but
    a cached point must never be replayed under a backend that did not
    actually produce it — the backend token is part of the code
    fingerprint (and hence of every point key).
    """
    from repro.sim.eventcore import available_backends, resolve_backend

    fingerprints = {}
    for backend in available_backends():
        monkeypatch.setenv("REPRO_EVENTCORE", backend)
        fingerprints[backend] = code_fingerprint_for(fig06_segsize._point)
    assert len(set(fingerprints.values())) == len(fingerprints), \
        "distinct backends must produce distinct cache fingerprints"
    # Without the override the auto-selected backend's token applies.
    monkeypatch.delenv("REPRO_EVENTCORE")
    assert (code_fingerprint_for(fig06_segsize._point)
            == fingerprints[resolve_backend(None)])


# -- spawn-safe pool -------------------------------------------------------

def _identical(first, second):
    assert first.labels == second.labels
    for series_a, series_b in zip(first.series, second.series):
        assert series_a.xs == series_b.xs
        assert series_a.ys == series_b.ys  # exact ==, not approx


def test_pool_context_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    assert executor._pool_context().get_start_method() == "spawn"
    monkeypatch.delenv("REPRO_MP_START")
    default = executor._pool_context().get_start_method()
    assert default in ("fork", "spawn", "forkserver")


def test_worker_init_replays_parent_sys_path(monkeypatch):
    from repro.sim.eventcore import sweep_arena

    fake = ["/nonexistent/extra-a", "/nonexistent/extra-b"]
    monkeypatch.setattr(sys, "path", list(sys.path))
    try:
        executor._worker_init(list(sys.path) + fake)
        assert sys.path[:2] == fake  # prepended, order preserved
        before = list(sys.path)
        executor._worker_init(before)  # idempotent
        assert sys.path == before
        # The initializer also warms up the sweep arena for the worker
        # process it normally runs in.
        assert sweep_arena().active
    finally:
        sweep_arena().disable()  # don't leak the arena into this process


@pytest.mark.parametrize("method", ["spawn"])
def test_spawn_pool_equals_serial(monkeypatch, method):
    """Forcing spawn workers reproduces the serial sweep exactly."""
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{method} unavailable")  # pragma: no cover
    serial = fig06_segsize.run(SMOKE, jobs=1, cache=False)
    monkeypatch.setenv("REPRO_MP_START", method)
    spawned = fig06_segsize.run(SMOKE, jobs=2, cache=False)
    _identical(serial, spawned)
