"""Cross-stack integration tests: every layer composed, invariants held.

These exercise the composition paths the figures rely on:
client → server → node → controller → drive, and
client → buffer cache → block layer/scheduler → drive.
"""

import pytest

from repro.core import ServerParams, StreamServer
from repro.disk import DISKSIM_GENERIC, WD800JD
from repro.disk.mechanics import RotationMode
from repro.host import BlockLayer, BufferCache, make_scheduler
from repro.io import IOKind, IORequest
from repro.node import HostParams, base_topology, build_node, \
    medium_topology
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.units import KiB, MiB
from repro.workload import ClientFleet, uniform_streams


def test_bytes_conservation_through_full_stack():
    """Every byte the clients request is completed exactly once, at
    every layer of the stack."""
    sim = Simulator()
    node = build_node(sim, medium_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=1 * MiB, dispatch_width=8, memory_budget=64 * MiB))
    specs = uniform_streams(4, node.disk_ids, node.capacity_bytes,
                            request_size=64 * KiB, total_bytes=2 * MiB)
    report = ClientFleet(sim, server, specs).run()
    requested = 4 * 8 * 2 * MiB  # 4 streams x 8 disks x 2 MiB
    assert report.total_bytes == requested
    assert server.stats.counter("completed").total_bytes == requested
    # Node/controller/disk bytes are server fetches + direct requests —
    # at least the client demand (read-ahead may fetch more, never less).
    assert node.stats.counter("completed").total_bytes >= requested * 0.9


def test_per_stream_progress_fairness_under_server():
    """Round-robin dispatch keeps the slowest stream within a small
    factor of the fastest over a fixed window."""
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=1 * MiB, dispatch_width=20, memory_budget=64 * MiB))
    specs = uniform_streams(20, node.disk_ids, node.capacity_bytes,
                            request_size=64 * KiB)
    report = ClientFleet(sim, server, specs).run(
        duration=8.0, warmup=1.0, settle_requests=5)
    fastest = max(report.per_stream_bytes)
    slowest = min(report.per_stream_bytes)
    assert slowest > 0
    assert fastest < 4 * slowest


def test_deterministic_full_stack_run():
    def run_once():
        sim = Simulator()
        node = build_node(sim, medium_topology(seed=99))
        server = StreamServer(sim, node, ServerParams(
            read_ahead=512 * KiB, memory_budget=32 * MiB))
        specs = uniform_streams(3, node.disk_ids, node.capacity_bytes,
                                request_size=64 * KiB,
                                total_bytes=1 * MiB)
        report = ClientFleet(sim, server, specs).run()
        return (report.total_bytes, round(report.elapsed, 9),
                round(report.mean_latency, 12))

    assert run_once() == run_once()


def test_server_over_scheduler_stack_composes():
    """The server can sit on top of the OS block layer too."""
    sim = Simulator()
    from repro.disk import DiskDrive, DriveConfig
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(rotation_mode=RotationMode.EXPECTED))
    layer = BlockLayer(sim, drive, make_scheduler("deadline"))
    server = StreamServer(sim, layer, ServerParams(
        read_ahead=1 * MiB, memory_budget=16 * MiB))
    done = []

    def client(sim):
        offset = 0
        for _ in range(32):
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=7))
            offset += 64 * KiB
        done.append(True)

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=60.0)
    assert done == [True]
    assert server.stats.counter("staged_hits").count > 10


def test_mixed_read_write_workload_through_server():
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=1 * MiB, memory_budget=32 * MiB,
        coalesce_writes=True))
    finished = []

    def reader(sim):
        offset = 0
        for _ in range(16):
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=1))
            offset += 64 * KiB
        finished.append("r")

    def writer(sim):
        offset = 40 * 10**9 - 40 * 10**9 % (64 * KiB)
        for _ in range(16):
            yield server.submit(IORequest(
                kind=IOKind.WRITE, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=2))
            offset += 64 * KiB
        finished.append("w")

    sim.process(reader(sim))
    sim.process(writer(sim))
    barrier = None
    sim.run(until=30.0)
    assert sorted(finished) == ["r", "w"]
    sim.run_until_event(server.write_coalescer.flush_all(), limit=60.0)


def test_tracer_records_drive_completions():
    sim = Simulator()
    from repro.disk import DiskDrive, DriveConfig
    tracer = Tracer(capacity=1000)
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(trace=tracer,
                                         rotation_mode=RotationMode.EXPECTED))
    for index in range(4):
        drive.submit(IORequest(kind=IOKind.READ, disk_id=0,
                               offset=index * 64 * KiB, size=64 * KiB))
    sim.run()
    completions = tracer.records(kind="complete")
    assert len(completions) == 4
    assert completions[0].time <= completions[-1].time


def test_host_cost_model_slows_under_heavy_buffers():
    """End-to-end: the same workload is slower with a pathological
    host buffer-management coefficient."""
    def run(per_buffer_cost):
        sim = Simulator()
        host = HostParams(completion_per_buffer_s=per_buffer_cost)
        node = build_node(sim, base_topology(
            disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED,
            host=host))
        server = StreamServer(sim, node, ServerParams(
            read_ahead=1 * MiB, dispatch_width=32,
            memory_budget=64 * MiB))
        specs = uniform_streams(32, node.disk_ids, node.capacity_bytes,
                                request_size=64 * KiB)
        report = ClientFleet(sim, server, specs).run(
            duration=4.0, warmup=1.0, settle_requests=4)
        return report.throughput_mb

    assert run(1.5e-6) > 1.3 * run(5e-3)


def test_xdd_stack_conserves_bytes():
    sim = Simulator()
    from repro.disk import DiskDrive, DriveConfig
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(rotation_mode=RotationMode.EXPECTED))
    layer = BlockLayer(sim, drive, make_scheduler("cfq"))
    cache = BufferCache(sim, layer, capacity_bytes=64 * MiB)
    from repro.workload import run_xdd
    report = run_xdd(sim, cache, num_streams=4,
                     per_stream_bytes=1 * MiB)
    assert report.total_bytes == 4 * MiB
    # The device fetched at least what the clients consumed.
    assert layer.stats.counter("completed").total_bytes >= 4 * MiB
