"""Tests for the per-figure shape checkers."""

import pytest

from repro.analysis import ExperimentResult
from repro.analysis.verify import CHECKERS, verify_result


def result_like_fig10(headline_flat=True, improvement=10.0):
    result = ExperimentResult(experiment_id="fig10", title="t",
                              x_label="streams", y_label="MB/s")
    big = result.new_series("R = 8M (M = S x 8M)")
    none = result.new_series("No read-ahead")
    for streams in (10, 30, 60, 100):
        big_value = 45.0 if headline_flat else (45.0 if streams == 10
                                                else 10.0)
        big.add(streams, big_value)
        none.add(streams, big.y_at(streams) / improvement)
    return result


def test_checkers_cover_every_figure():
    assert set(CHECKERS) == {
        "fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"}


def test_fig10_checker_passes_good_shape():
    assert verify_result(result_like_fig10()) == []


def test_fig10_checker_flags_collapse():
    violations = verify_result(result_like_fig10(headline_flat=False))
    assert any("flat" in v for v in violations)


def test_fig10_checker_flags_weak_improvement():
    violations = verify_result(result_like_fig10(improvement=2.0))
    assert any("no-RA" in v for v in violations)


def test_unknown_figure_verifies_trivially():
    result = ExperimentResult(experiment_id="ext-whatever", title="t",
                              x_label="x", y_label="y")
    assert verify_result(result) == []


def test_fig07_checker():
    result = ExperimentResult(experiment_id="fig07", title="t",
                              x_label="config", y_label="MB/s")
    for label, good_big in (("10 streams", False),
                            ("100 streams", False)):
        series = result.new_series(label)
        series.add("128x64K", 10.0)
        series.add("16x512K", 20.0 if label == "10 streams" else 5.0)
        series.add("8x1M", 2.0)
    assert verify_result(result) == []
    # Break the thrash cliff: big segments suddenly great at 100 streams.
    result.get("100 streams").points[-1] = \
        type(result.get("100 streams").points[-1])("8x1M", 50.0)
    assert verify_result(result) != []


def test_fig12_checker_flags_ceiling_violation():
    result = ExperimentResult(experiment_id="fig12", title="t",
                              x_label="s", y_label="MB/s")
    for label, value in (("No read-ahead", 30.0), ("R = 512K", 200.0),
                         ("R = 1M", 260.0), ("R = 2M", 500.0)):
        series = result.new_series(label)
        for streams in (10, 30, 60, 100):
            series.add(streams, value)
    violations = verify_result(result)
    assert any("ceiling" in v for v in violations)


def test_smoke_scale_results_pass_their_checkers():
    """End-to-end: a couple of real runs satisfy their own checkers."""
    from repro.experiments import EXPERIMENTS, SMOKE
    for figure_id in ("fig04", "fig06"):
        result = EXPERIMENTS[figure_id](SMOKE)
        assert verify_result(result) == [], figure_id
