"""Edge-case and property tests for the DES kernel."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


# ---------------------------------------------------------------------------
# Conditions: failure propagation, mixed states
# ---------------------------------------------------------------------------

def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    good = sim.timeout(5.0)
    bad = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield sim.all_of([good, bad])
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    sim.process(waiter(sim))
    bad.fail(RuntimeError("child died"))
    sim.run()
    # Failure propagates immediately, before the slow child fires.
    assert caught == [(0.0, "child died")]


def test_any_of_fails_on_child_failure():
    sim = Simulator()
    slow = sim.timeout(5.0)
    bad = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield sim.any_of([slow, bad])
        except RuntimeError:
            caught.append(sim.now)

    sim.process(waiter(sim))
    bad.fail(RuntimeError("boom"))
    sim.run()
    assert caught == [0.0]


def test_condition_with_pre_processed_children():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()
    results = []

    def waiter(sim):
        mapping = yield sim.all_of([done])
        results.append(list(mapping.values()))

    sim.process(waiter(sim))
    sim.run()
    assert results == [["early"]]


def test_condition_rejects_foreign_events():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(ValueError):
        sim_a.all_of([sim_a.event(), sim_b.event()])


# ---------------------------------------------------------------------------
# Interrupts interacting with resources
# ---------------------------------------------------------------------------

def test_interrupt_while_holding_resource_releases_in_finally():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        grant = resource.request()
        yield grant
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            order.append("interrupted")
        finally:
            resource.release()

    def contender(sim):
        grant = resource.request()
        yield grant
        order.append(("acquired", sim.now))
        resource.release()

    target = sim.process(holder(sim))
    sim.process(contender(sim))

    def poker(sim):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.process(poker(sim))
    sim.run()
    assert order == ["interrupted", ("acquired", 1.0)]


def test_interrupt_while_waiting_in_store():
    sim = Simulator()
    store = Store(sim)
    outcome = []

    def consumer(sim):
        try:
            yield store.get()
        except Interrupt:
            outcome.append("interrupted")

    target = sim.process(consumer(sim))

    def poker(sim):
        yield sim.timeout(0.5)
        target.interrupt()

    sim.process(poker(sim))
    sim.run()
    assert outcome == ["interrupted"]


def test_double_interrupt_delivers_both():
    sim = Simulator()
    seen = []

    def stubborn(sim):
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                seen.append(interrupt.cause)
        return "done"

    target = sim.process(stubborn(sim))
    target.interrupt("first")
    target.interrupt("second")
    result = sim.run_until_event(target)
    assert seen == ["first", "second"]
    assert result == "done"


# ---------------------------------------------------------------------------
# Property: event ordering
# ---------------------------------------------------------------------------

@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0,
                                 allow_nan=False),
                       min_size=1, max_size=100))
@settings(max_examples=50)
def test_property_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.timeout(delay).callbacks.append(
            lambda e, d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    # Every timeout fired exactly at its delay.
    assert sorted(d for _t, d in fired) == sorted(delays)
    for time, delay in fired:
        assert time == pytest.approx(delay)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                 allow_nan=False),
                       min_size=2, max_size=50))
@settings(max_examples=30)
def test_property_equal_times_fifo(delays):
    """Events at identical times process in scheduling order."""
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        rounded = round(delay, 1)  # force collisions
        sim.timeout(rounded).callbacks.append(
            lambda e, i=index, t=rounded: fired.append((t, i)))
    sim.run()
    # Within each timestamp, indexes ascend (FIFO of scheduling).
    by_time = {}
    for time, index in fired:
        by_time.setdefault(time, []).append(index)
    for indexes in by_time.values():
        assert indexes == sorted(indexes)


def test_step_on_empty_heap_raises():
    sim = Simulator()
    with pytest.raises(IndexError):
        sim.step()


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(ValueError):
        event.succeed(delay=-1.0)
