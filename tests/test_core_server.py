"""Integration tests for the StreamServer over a simulated storage node."""

import pytest

from repro.core import ServerParams, StreamServer
from repro.core.policies import OffsetAwarePolicy
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.node import base_topology, build_node, medium_topology
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet, uniform_streams


def make_server(sim, num_disks=1, **param_kwargs):
    topo = base_topology if num_disks == 1 else medium_topology
    node = build_node(sim, topo(disk_spec=WD800JD,
                                rotation_mode=RotationMode.EXPECTED))
    defaults = dict(read_ahead=1 * MiB, memory_budget=64 * MiB,
                    requests_per_residency=1)
    defaults.update(param_kwargs)
    server = StreamServer(sim, node, ServerParams(**defaults))
    return server, node


def read(offset, size=64 * KiB, disk=0, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=disk, offset=offset,
                     size=size, stream_id=stream)


def run_stream(sim, server, total, request=64 * KiB, start=0, disk=0,
               stream=1):
    latencies = []

    def client(sim):
        offset = start
        while offset < start + total:
            event = server.submit(read(offset, request, disk, stream))
            completed = yield event
            latencies.append(completed.latency)
            offset += request

    process = sim.process(client(sim))
    sim.run_until_event(process)
    return latencies


def test_single_stream_served_mostly_from_staging():
    sim = Simulator()
    server, node = make_server(sim)
    run_stream(sim, server, total=8 * MiB)
    stats = server.stats
    assert stats.counter("staged_hits").count > 100
    # Only the pre-detection requests went direct.
    assert stats.counter("direct").count <= 4
    assert stats.counter("completed").total_bytes == 8 * MiB


def test_staged_hits_are_fast():
    sim = Simulator()
    server, _node = make_server(sim)
    latencies = run_stream(sim, server, total=8 * MiB)
    # Most completions come from memory at ~copy cost, far under disk time.
    fast = sum(1 for lat in latencies if lat < 0.001)
    assert fast > len(latencies) * 0.6


def test_writes_pass_through():
    sim = Simulator()
    server, node = make_server(sim)
    event = server.submit(IORequest(kind=IOKind.WRITE, disk_id=0,
                                    offset=0, size=64 * KiB))
    sim.run_until_event(event)
    assert server.stats.counter("direct").count == 1


def test_random_requests_pass_through():
    sim = Simulator()
    server, _node = make_server(sim)
    from repro.workload import random_requests
    events = [server.submit(r) for r in random_requests(
        20, [0], server.capacity_bytes, request_size=64 * KiB, seed=3)]
    for event in events:
        sim.run_until_event(event)
    assert server.stats.counter("direct").count == 20
    assert server.classifier.detected == 0


def test_zero_read_ahead_is_transparent():
    sim = Simulator()
    server, _node = make_server(sim, read_ahead=0, memory_budget=0)
    run_stream(sim, server, total=2 * MiB)
    assert server.stats.counter("direct").count == 32
    assert server.classifier.detected == 0


def test_memory_budget_respected_under_load():
    sim = Simulator()
    server, _node = make_server(sim, read_ahead=1 * MiB,
                                memory_budget=4 * MiB, dispatch_width=4)
    specs = uniform_streams(16, [0], server.capacity_bytes,
                            request_size=64 * KiB, total_bytes=2 * MiB)
    fleet = ClientFleet(sim, server, specs)
    fleet.run()
    assert server.buffered.peak_in_use <= 4 * MiB


def test_dispatch_width_bounds_concurrent_fetches():
    sim = Simulator()
    server, node = make_server(sim, read_ahead=1 * MiB,
                               dispatch_width=2, memory_budget=64 * MiB)
    specs = uniform_streams(8, [0], server.capacity_bytes,
                            request_size=64 * KiB, total_bytes=1 * MiB)
    max_members = 0

    def watcher(sim):
        nonlocal max_members
        for _ in range(500):
            max_members = max(max_members,
                              len(server.dispatch.members))
            yield sim.timeout(0.002)

    sim.process(watcher(sim))
    ClientFleet(sim, server, specs).run()
    assert max_members <= 2


def test_improves_throughput_vs_direct_at_many_streams():
    """The headline: server >> raw node at 100 streams."""
    def aggregate(server_on):
        sim = Simulator()
        server, node = make_server(sim, read_ahead=2 * MiB,
                                   dispatch_width=100,
                                   memory_budget=256 * MiB)
        device = server if server_on else node
        specs = uniform_streams(100, [0], node.capacity_bytes,
                                request_size=64 * KiB, total_bytes=None)
        report = ClientFleet(sim, device, specs).run(duration=10.0,
                                                     warmup=2.0)
        return report.throughput_mb

    assert aggregate(True) > 3 * aggregate(False)


def test_insensitivity_to_stream_count():
    """R=8M keeps throughput within a tight band from 10 to 100 streams."""
    def aggregate(num_streams):
        sim = Simulator()
        server, node = make_server(sim, read_ahead=8 * MiB,
                                   dispatch_width=num_streams,
                                   memory_budget=1024 * MiB)
        specs = uniform_streams(num_streams, [0], node.capacity_bytes,
                                request_size=64 * KiB, total_bytes=None)
        report = ClientFleet(sim, server, specs).run(
            duration=10.0, warmup=2.0, settle_requests=5)
        return report.throughput_mb

    few, many = aggregate(10), aggregate(100)
    assert many > 0.8 * few


def test_gc_reclaims_abandoned_stream():
    sim = Simulator()
    server, _node = make_server(sim, gc_period=0.5, buffer_timeout=1.0,
                                stream_timeout=2.0)
    run_stream(sim, server, total=1 * MiB)  # stream then goes silent
    assert server.classifier.live_streams == 1
    sim.run()  # GC countdowns fire
    assert server.classifier.live_streams == 0
    assert server.buffered.in_use == 0
    assert not server.gc.running


def test_gc_does_not_drop_active_stream():
    sim = Simulator()
    server, _node = make_server(sim, gc_period=0.2, stream_timeout=1.0)

    def slow_client(sim):
        offset = 0
        for _ in range(40):
            yield server.submit(read(offset, stream=1))
            offset += 64 * KiB
            yield sim.timeout(0.3)  # slower than GC period, under timeout

    process = sim.process(slow_client(sim))
    sim.run_until_event(process)
    assert server.stats.counter("completed").count == 40


def test_reclaimed_data_falls_back_to_direct():
    sim = Simulator()
    server, _node = make_server(sim, gc_period=0.2, buffer_timeout=0.5,
                                stream_timeout=60.0)

    def stop_and_go(sim):
        offset = 0
        for _ in range(8):  # get detected, pull some staged data
            yield server.submit(read(offset, stream=1))
            offset += 64 * KiB
        yield sim.timeout(3.0)  # buffers idle out and get collected
        yield server.submit(read(offset, stream=1))

    process = sim.process(stop_and_go(sim))
    sim.run_until_event(process)
    assert server.stats.counter("reclaimed_misses").count >= 1


def test_multi_disk_streams_dispatch_per_disk():
    sim = Simulator()
    server, node = make_server(sim, num_disks=8, read_ahead=1 * MiB,
                               dispatch_width=8, memory_budget=64 * MiB)
    specs = uniform_streams(2, node.disk_ids, node.capacity_bytes,
                            request_size=64 * KiB, total_bytes=2 * MiB)
    report = ClientFleet(sim, server, specs).run()
    assert report.total_bytes == 16 * 2 * MiB
    # Every disk saw read-ahead traffic.
    for disk_id in node.disk_ids:
        assert node.drive(disk_id).stats.counter("completed").count > 0


def test_offset_aware_policy_runs():
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(
        sim, node,
        ServerParams(read_ahead=1 * MiB, dispatch_width=2,
                     memory_budget=32 * MiB),
        policy=OffsetAwarePolicy())
    specs = uniform_streams(6, [0], node.capacity_bytes,
                            request_size=64 * KiB, total_bytes=1 * MiB)
    report = ClientFleet(sim, server, specs).run()
    assert report.total_bytes == 6 * MiB


def test_buffers_registered_with_host_model():
    sim = Simulator()
    server, node = make_server(sim)
    seen = []

    def watcher(sim):
        for _ in range(200):
            seen.append(node.live_buffers)
            yield sim.timeout(0.001)

    sim.process(watcher(sim))
    run_stream(sim, server, total=4 * MiB)
    assert max(seen) >= 1  # staged buffers visible to the cost model
    sim.run()
    assert node.live_buffers == 0  # all unregistered after reclamation
