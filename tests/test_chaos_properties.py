"""Randomized chaos properties: the stack under seeded fault schedules.

Every seed builds a different fault mix (probabilistic transients,
transient/permanent media defects, stragglers, deadlines, quarantine)
and runs tolerant clients through the full stream-server stack over a
:class:`~repro.faults.FaultyDevice`. The properties:

* **completion** — every issued request either completes or raises
  (counted by the tolerant client); nothing vanishes;
* **byte conservation** — completed bytes equal completed requests
  times the request size, client-side and server-side;
* **termination** — every stream finishes its fixed byte budget within
  a generous simulated-time cap;
* **no buffered-set leaks** — once the clients are done and GC has had
  time to run, the server's buffered set holds zero bytes.

The seed matrix is CI-tunable: ``REPRO_CHAOS_SEEDS=lo:hi`` (default
``0:20``) so the nightly lane can run a wider sweep than the fast lane.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ServerParams, StreamServer
from repro.faults import FaultPlan, FaultyDevice, MediaFault, RandomFaults, \
    StragglerProfile
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet, uniform_streams

REQUEST_SIZE = 64 * KiB
PER_STREAM_BYTES = 1 * MiB
NUM_STREAMS = 3
#: Simulated-seconds cap: far beyond what 3 MiB at disk speed needs,
#: even with retries, backoff and stragglers.
TIME_CAP = 120.0


def _seed_matrix():
    spec = os.environ.get("REPRO_CHAOS_SEEDS", "0:20")
    lo, _, hi = spec.partition(":")
    return list(range(int(lo), int(hi)))


SEEDS = _seed_matrix()


def _plan_for(seed: int) -> FaultPlan:
    """A seed-dependent mix of every fault class."""
    media = []
    if seed % 2:  # transient defect early in stream 0's range
        media.append(MediaFault(disk_id=0, offset=2 * REQUEST_SIZE,
                                size=REQUEST_SIZE, transient=True,
                                recover_after=1 + seed % 3))
    if seed % 5 == 0:  # permanent defect: retries must give up
        media.append(MediaFault(disk_id=0, offset=5 * REQUEST_SIZE,
                                size=REQUEST_SIZE))
    stragglers = []
    if seed % 3 == 0:
        stragglers.append(StragglerProfile(slowdown=2.0, start=0.05))
    return FaultPlan(
        seed=seed,
        media=tuple(media),
        random_faults=(RandomFaults(
            probability=0.02 + (seed % 7) * 0.02),),
        stragglers=tuple(stragglers))


def _params_for(seed: int) -> ServerParams:
    """Seed-dependent policy knobs (retry depth, quarantine, deadline)."""
    return ServerParams(
        read_ahead=256 * KiB, dispatch_width=2,
        requests_per_residency=2, memory_budget=16 * MiB,
        gc_period=0.5, buffer_timeout=1.0, stream_timeout=2.0,
        max_retries=seed % 4,
        retry_seed=seed,
        quarantine_threshold=(2 if seed % 2 else 0),
        request_deadline_s=(0.25 if seed % 4 == 2 else 0.0))


def _chaos_run(seed: int):
    """One full chaos run; returns (clients, server, sim)."""
    sim = Simulator()
    node = build_node(sim, base_topology(seed=seed))
    faulty = FaultyDevice(sim, node, _plan_for(seed))
    server = StreamServer(sim, faulty, _params_for(seed))
    specs = uniform_streams(NUM_STREAMS, node.disk_ids,
                            node.capacity_bytes,
                            request_size=REQUEST_SIZE,
                            total_bytes=PER_STREAM_BYTES)
    fleet = ClientFleet(sim, server, specs, tolerate_errors=True)
    fleet.run(duration=TIME_CAP)
    return fleet, server, sim


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_invariants(seed):
    fleet, server, sim = _chaos_run(seed)
    expected = PER_STREAM_BYTES // REQUEST_SIZE

    # Termination: every stream consumed its whole byte budget (as
    # completions or skipped errors) well within the time cap.
    for client in fleet.clients:
        assert client.finished_at is not None, \
            f"seed {seed}: stream {client.spec.stream_id} never finished"
        assert client.finished_at <= TIME_CAP

    # Completion: nothing vanishes — every issued request either
    # completed or raised into the tolerant client.
    for client in fleet.clients:
        assert client.completed_requests + client.errors == expected, \
            (f"seed {seed}: stream {client.spec.stream_id} lost "
             f"{expected - client.completed_requests - client.errors} "
             f"requests")

    # Byte conservation, client-side and server-side.
    for client in fleet.clients:
        assert client.completed_bytes == \
            client.completed_requests * REQUEST_SIZE
    report = server.report()
    assert report.completed_bytes == sum(
        c.completed_bytes for c in fleet.clients)

    # No buffered-set leaks: give GC time to reap idle buffers, then
    # the buffered set must be empty (quarantine reclamation included).
    sim.run(until=sim.now + 10.0)
    assert server.buffered.in_use == 0, \
        (f"seed {seed}: {server.buffered.in_use} bytes leaked in the "
         f"buffered set")
    assert server.memory_in_use == 0


@pytest.mark.parametrize("seed", [s for s in SEEDS if s % 7 == 0][:3])
def test_chaos_deterministic(seed):
    """Same seed, same workload => bit-identical per-stream outcomes."""
    first, _, _ = _chaos_run(seed)
    second, _, _ = _chaos_run(seed)
    assert [c.completed_bytes for c in first.clients] == \
        [c.completed_bytes for c in second.clients]
    assert [c.errors for c in first.clients] == \
        [c.errors for c in second.clients]
    assert [c.finished_at for c in first.clients] == \
        [c.finished_at for c in second.clients]


# ---------------------------------------------------------------------------
# Hedged-mirror chaos: the resilience layer under the same fault mixes
# ---------------------------------------------------------------------------

def _hedged_plan_for(seed: int) -> FaultPlan:
    """The base fault mix, plus a mid-run death of mirror member 0 on
    a quarter of the seeds — the degraded-mode path hedging must keep
    invisible to clients."""
    import dataclasses

    from repro.faults import DiskDeath

    base = _plan_for(seed)
    if seed % 4 == 1:
        # Early enough that most of the run happens degraded (the
        # whole workload is a few hundredths of a simulated second).
        return dataclasses.replace(
            base, deaths=(DiskDeath(disk_id=0, at=0.01),))
    return base


def _hedged_chaos_run(seed: int):
    """One chaos run through a two-member HedgedVolume mirror."""
    from repro.node import HedgedVolume, HedgePolicy, medium_topology

    sim = Simulator()
    node = build_node(sim, medium_topology(seed=seed))
    faulty = FaultyDevice(sim, node, _hedged_plan_for(seed))
    policy = HedgePolicy(
        select="ewma" if seed % 2 else "roundrobin",
        hedge=(seed % 5 != 0),  # a fifth of the seeds run redirect-only
        hedge_k=1.0, hedge_min_s=1e-3)
    volume = HedgedVolume(sim, faulty, [0, 1], policy=policy)
    server = StreamServer(sim, volume, _params_for(seed))
    specs = uniform_streams(NUM_STREAMS, [0], volume.capacity_bytes,
                            request_size=REQUEST_SIZE,
                            total_bytes=PER_STREAM_BYTES)
    fleet = ClientFleet(sim, server, specs, tolerate_errors=True)
    fleet.run(duration=TIME_CAP)
    return fleet, server, volume, sim


@pytest.mark.parametrize("seed", SEEDS)
def test_hedged_chaos_invariants(seed):
    fleet, server, volume, sim = _hedged_chaos_run(seed)
    expected = PER_STREAM_BYTES // REQUEST_SIZE

    # Termination + completion: hedge copies in flight never strand a
    # request — every issue resolves exactly once, in time.
    for client in fleet.clients:
        assert client.finished_at is not None, \
            f"seed {seed}: stream {client.spec.stream_id} never finished"
        assert client.completed_requests + client.errors == expected

    # Byte conservation with hedges racing: a request completed through
    # *either* copy counts its bytes exactly once.
    for client in fleet.clients:
        assert client.completed_bytes == \
            client.completed_requests * REQUEST_SIZE
    report = server.report()
    assert report.completed_bytes == sum(
        c.completed_bytes for c in fleet.clients)

    # Hedge bookkeeping sanity: losers are cancelled, never completed
    # twice; every launched copy has drained by the end of the run.
    stats = volume.stats
    issued = stats.counter("hedges_issued").count
    assert stats.counter("hedges_won").count <= issued
    assert stats.counter("hedges_cancelled").count <= issued
    assert all(count == 0 for count in volume._inflight.values()), \
        f"seed {seed}: leaked in-flight copies {volume._inflight}"

    # A killed member degrades the mirror but never surfaces
    # DiskDeadError to clients: reads redirect to the survivor.
    if seed % 4 == 1:
        assert volume.degraded
        assert 0 in volume.dead_disks

    # No buffered-set leaks, hedged or not.
    sim.run(until=sim.now + 10.0)
    assert server.buffered.in_use == 0
    assert server.memory_in_use == 0


@pytest.mark.parametrize("seed", [s for s in SEEDS if s % 6 == 1][:3])
def test_hedged_chaos_deterministic(seed):
    """Same seed => bit-identical outcomes with hedges racing."""
    first_fleet, _, first_volume, _ = _hedged_chaos_run(seed)
    second_fleet, _, second_volume, _ = _hedged_chaos_run(seed)
    assert [c.completed_bytes for c in first_fleet.clients] == \
        [c.completed_bytes for c in second_fleet.clients]
    assert [c.errors for c in first_fleet.clients] == \
        [c.errors for c in second_fleet.clients]
    assert [c.finished_at for c in first_fleet.clients] == \
        [c.finished_at for c in second_fleet.clients]
    for name in ("hedges_issued", "hedges_won", "hedges_cancelled",
                 "redirects", "completed"):
        assert first_volume.stats.counter(name).count == \
            second_volume.stats.counter(name).count, name
