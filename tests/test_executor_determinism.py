"""Determinism and caching guarantees of the sweep executor.

The contract (ISSUE 1): parallel execution must be *byte-identical* to
the serial path — every point is an independent seeded simulation, so
fanning out across processes may never change a single y value — and a
warm cache must return identical results without re-simulating.

The default-run tests cover two cheap figures at SMOKE scale plus the
executor's unit-level behaviours; ``-m slow`` extends the equality check
to every figure and extension at SMOKE (several minutes, not part of
tier-1).
"""

import pytest

from repro.experiments import EXPERIMENTS, EXTENSIONS, SMOKE
from repro.experiments import fig05_xdd_single, fig06_segsize
from repro.experiments import executor
from repro.experiments.base import ExperimentScale
from repro.experiments.executor import (
    Point,
    SweepSpec,
    build_result,
    point_key,
    run_sweep,
)

TINY = ExperimentScale("tiny", duration=0.1, warmup=0.02)

#: Cheap single-disk figures safe to run twice in tier-1.
CHEAP_FIGURES = {
    "fig05": fig05_xdd_single.run,
    "fig06": fig06_segsize.run,
}


def _identical(first, second):
    assert first.labels == second.labels
    assert first.as_dict() == second.as_dict()
    for series_a, series_b in zip(first.series, second.series):
        assert series_a.xs == series_b.xs
        assert series_a.ys == series_b.ys  # exact ==, not approx


@pytest.mark.parametrize("figure_id", sorted(CHEAP_FIGURES))
def test_parallel_equals_serial_smoke(figure_id):
    """jobs=2 pool output is exactly the serial output at SMOKE."""
    run = CHEAP_FIGURES[figure_id]
    serial = run(SMOKE, jobs=1, cache=False)
    parallel = run(SMOKE, jobs=2, cache=False)
    _identical(serial, parallel)


@pytest.mark.slow
@pytest.mark.parametrize("figure_id",
                         sorted(EXPERIMENTS) + sorted(EXTENSIONS))
def test_parallel_equals_serial_smoke_all_figures(figure_id):
    """Every figure: pool output == serial output at SMOKE scale."""
    run = {**EXPERIMENTS, **EXTENSIONS}[figure_id]
    serial = run(SMOKE, jobs=1, cache=False)
    parallel = run(SMOKE, jobs=2, cache=False)
    _identical(serial, parallel)


def test_warm_cache_returns_identical_without_resimulating(tmp_path):
    """Second run: zero simulated points (run-counter hook), same data."""
    before = executor.simulated_points()
    cold = run_sweep(fig06_segsize.sweep(), TINY, jobs=1,
                     cache_root=tmp_path)
    after_cold = executor.simulated_points()
    assert after_cold - before == len(fig06_segsize.sweep().points)

    warm = run_sweep(fig06_segsize.sweep(), TINY, jobs=1,
                     cache_root=tmp_path)
    after_warm = executor.simulated_points()
    assert after_warm == after_cold, "warm cache re-simulated points"
    _identical(cold, warm)


def test_cache_disabled_always_simulates(tmp_path):
    """cache=False never consults or fills the on-disk store."""
    spec = fig06_segsize.sweep()
    before = executor.simulated_points()
    run_sweep(spec, TINY, jobs=1, cache=False, cache_root=tmp_path)
    run_sweep(spec, TINY, jobs=1, cache=False, cache_root=tmp_path)
    assert executor.simulated_points() - before == 2 * len(spec.points)
    assert not any(tmp_path.rglob("*.json"))


def _stub_point(scale, params):
    return float(params["value"]) * scale.duration


def _stub_multi(scale, params):
    return {"a": float(params["value"]), "b": -float(params["value"])}


def test_in_sweep_duplicates_simulate_once():
    """Identical points (same fn + params) collapse to one simulation."""
    spec = SweepSpec(
        experiment_id="dup", title="t", x_label="x", y_label="y",
        point_fn=_stub_point,
        points=(
            Point(series="main", x=1, params={"value": 7}),
            Point(series="baseline", x=1, params={"value": 7}),
            Point(series="main", x=2, params={"value": 9}),
        ))
    before = executor.simulated_points()
    result = run_sweep(spec, TINY, jobs=1, cache=False)
    assert executor.simulated_points() - before == 2  # not 3
    assert result.get("main").ys == [7 * TINY.duration,
                                     9 * TINY.duration]
    assert result.get("baseline").ys == [7 * TINY.duration]


def test_dict_valued_points_fan_into_series():
    """A dict return lands one x in every named series, in order."""
    spec = SweepSpec(
        experiment_id="multi", title="t", x_label="x", y_label="y",
        point_fn=_stub_multi,
        points=(Point(series="a", x="p", params={"value": 3}),
                Point(series="a", x="q", params={"value": 4})),
        series_order=("a", "b"))
    result = run_sweep(spec, TINY, jobs=1, cache=False)
    assert result.labels == ["a", "b"]
    assert result.get("a").ys == [3.0, 4.0]
    assert result.get("b").ys == [-3.0, -4.0]


def test_point_key_sensitivity():
    """Keys differ across fn, params, and scale; stable otherwise."""
    base = point_key(_stub_point, TINY, {"value": 1})
    assert base == point_key(_stub_point, TINY, {"value": 1})
    assert base != point_key(_stub_multi, TINY, {"value": 1})
    assert base != point_key(_stub_point, TINY, {"value": 2})
    assert base != point_key(_stub_point, SMOKE, {"value": 1})


def test_cache_shared_across_figures_for_same_point(tmp_path):
    """fig13-style baseline points hit fig12-style cache entries."""
    spec_a = SweepSpec(
        experiment_id="a", title="t", x_label="x", y_label="y",
        point_fn=_stub_point,
        points=(Point(series="s", x=1, params={"value": 5}),))
    spec_b = SweepSpec(
        experiment_id="b", title="t", x_label="x", y_label="y",
        point_fn=_stub_multi,  # different default fn...
        points=(Point(series="s", x=1, params={"value": 5},
                      fn=_stub_point),))  # ...but the point overrides it
    before = executor.simulated_points()
    run_sweep(spec_a, TINY, jobs=1, cache_root=tmp_path)
    run_sweep(spec_b, TINY, jobs=1, cache_root=tmp_path)
    assert executor.simulated_points() - before == 1


def test_build_result_preserves_point_order():
    """Series assemble in spec order regardless of completion order."""
    spec = SweepSpec(
        experiment_id="o", title="t", x_label="x", y_label="y",
        point_fn=_stub_point,
        points=tuple(Point(series="s", x=i, params={"value": i})
                     for i in (3, 1, 2)))
    result = build_result(spec, [30.0, 10.0, 20.0])
    assert result.get("s").xs == [3, 1, 2]
    assert result.get("s").ys == [30.0, 10.0, 20.0]


def test_code_fingerprint_ignores_tests_and_benchmarks(tmp_path):
    """Only package sources count: tests/benchmarks/docs don't churn it."""
    from repro.experiments.executor import code_fingerprint

    (tmp_path / "pkg.py").write_text("x = 1\n")
    for excluded in ("tests", "benchmarks", "docs", "__pycache__"):
        (tmp_path / excluded).mkdir()
    base = code_fingerprint(root=tmp_path)
    for excluded in ("tests", "benchmarks", "docs", "__pycache__"):
        (tmp_path / excluded / "extra.py").write_text("y = 2\n")
    assert code_fingerprint(root=tmp_path) == base

    (tmp_path / "pkg.py").write_text("x = 2\n")
    assert code_fingerprint(root=tmp_path) != base


def test_code_fingerprint_sees_package_edits(tmp_path):
    """New or renamed package modules change the fingerprint."""
    from repro.experiments.executor import code_fingerprint

    (tmp_path / "a.py").write_text("pass\n")
    base = code_fingerprint(root=tmp_path)
    (tmp_path / "b.py").write_text("pass\n")
    grown = code_fingerprint(root=tmp_path)
    assert grown != base
    (tmp_path / "b.py").rename(tmp_path / "c.py")
    assert code_fingerprint(root=tmp_path) not in (base, grown)


def test_chunksize_heuristic():
    """Tiny scales batch; QUICK/FULL scales stay at chunksize 1."""
    from repro.experiments import FULL, QUICK
    from repro.experiments.executor import _chunksize

    # SMOKE points batch, bounded and load-balanced.
    assert _chunksize(SMOKE, ntasks=64, workers=2) == 8
    assert _chunksize(SMOKE, ntasks=12, workers=2) == 1
    assert _chunksize(SMOKE, ntasks=640, workers=4) == 8  # capped
    assert _chunksize(TINY, ntasks=64, workers=2) == 8
    # Long-running points never batch (head-of-line risk).
    assert _chunksize(QUICK, ntasks=64, workers=2) == 1
    assert _chunksize(FULL, ntasks=640, workers=4) == 1


def test_parallel_equals_serial_with_batching():
    """Batched pool map (SMOKE chunksize > 1) is still byte-identical."""
    spec = SweepSpec(
        experiment_id="batch", title="t", x_label="x", y_label="y",
        point_fn=_stub_point,
        points=tuple(Point(series="s", x=i, params={"value": i})
                     for i in range(24)))
    serial = run_sweep(spec, TINY, jobs=1, cache=False)
    parallel = run_sweep(spec, TINY, jobs=2, cache=False)
    _identical(serial, parallel)


@pytest.mark.smoke_parallel
def test_smoke_parallel_runner_cli(monkeypatch, capsys, tmp_path):
    """Tier-1 wiring: REPRO_JOBS=2 + smoke scale through the real CLI.

    Exercises env-based job resolution, the fork pool, the on-disk
    cache, and the --json emitter end to end on a cheap figure.
    """
    import json

    from repro.experiments.runner import main

    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
    monkeypatch.setenv("REPRO_JOBS", "2")
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
    json_path = tmp_path / "runner.json"
    exit_code = main(["fig06", "--scale", "smoke",
                      "--json", str(json_path)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "jobs=2" in output
    payload = json.loads(json_path.read_text())
    assert payload["jobs"] == 2
    assert "fig06" in payload["figures"]
    assert payload["figures"]["fig06"]["wall_s"] >= 0
    series = payload["figures"]["fig06"]["series"]
    assert "30 streams" in series and len(series["30 streams"]) == 7
