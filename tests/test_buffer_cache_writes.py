"""Tests for the buffer cache's buffered-write / writeback path."""

import pytest

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.host import BlockLayer, BufferCache, ReadaheadParams, \
    make_scheduler
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_stack(sim, capacity=16 * MiB, readahead=None):
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(rotation_mode=RotationMode.EXPECTED))
    layer = BlockLayer(sim, drive, make_scheduler("noop"))
    cache = BufferCache(sim, layer, capacity_bytes=capacity,
                        readahead=readahead)
    return cache, layer, drive


def test_buffered_write_completes_without_disk():
    sim = Simulator()
    cache, layer, _drive = make_stack(sim)
    event = cache.write(1, 0, 0, 16 * KiB)
    sim.run(until=0.0001)
    assert event.processed
    assert cache.dirty_pages == 4
    assert layer.stats.counter("dispatched").count == 0  # not yet


def test_background_flusher_writes_back():
    sim = Simulator()
    params = ReadaheadParams(writeback_period=0.2)
    cache, layer, drive = make_stack(sim, readahead=params)
    sim.run_until_event(cache.write(1, 0, 0, 64 * KiB), limit=1.0)
    sim.run()  # flusher drains
    assert cache.dirty_pages == 0
    assert drive.stats.counter("media_write").total_bytes == 64 * KiB
    # Contiguous dirty pages went as one coalesced write.
    assert cache.stats.counter("writeback_io").count == 1


def test_write_after_write_coalesces_runs():
    sim = Simulator()
    cache, _layer, _drive = make_stack(sim)
    for index in range(8):
        sim.run_until_event(cache.write(1, 0, index * 4 * KiB, 4 * KiB),
                            limit=1.0)
    assert cache.dirty_pages == 8
    barrier = cache.sync()
    sim.run_until_event(barrier, limit=10.0)
    assert cache.dirty_pages == 0
    assert cache.stats.counter("writeback_io").count == 1  # one 32K run


def test_dirty_throttling_blocks_writer():
    sim = Simulator()
    params = ReadaheadParams(dirty_ratio=0.1, writeback_period=10.0)
    cache, _layer, drive = make_stack(sim, capacity=1 * MiB,
                                      readahead=params)
    # Limit = 25 pages; write far more: the writer must stall on
    # synchronous writeback.
    event = cache.write(1, 0, 0, 512 * KiB)  # 128 pages
    sim.run_until_event(event, limit=30.0)
    assert event.value is None
    assert cache.dirty_pages <= int(cache.capacity_pages * 0.1)
    assert drive.stats.counter("media_write").total_bytes > 0


def test_sync_barrier_on_clean_cache():
    sim = Simulator()
    cache, _layer, _drive = make_stack(sim)
    barrier = cache.sync()
    sim.run(until=0.001)
    assert barrier.processed


def test_read_after_buffered_write_hits():
    sim = Simulator()
    cache, layer, _drive = make_stack(sim)
    sim.run_until_event(cache.write(1, 0, 0, 16 * KiB), limit=1.0)
    before = layer.stats.counter("dispatched").count
    sim.run_until_event(cache.read(1, 0, 0, 16 * KiB), limit=1.0)
    assert layer.stats.counter("dispatched").count == before  # cache hit
    assert cache.stats.counter("hits").total_bytes == 16 * KiB


def test_dirty_pages_survive_read_pressure():
    """Reads that churn the cache never evict dirty pages silently."""
    sim = Simulator()
    params = ReadaheadParams(dirty_ratio=0.5, writeback_period=30.0)
    cache, _layer, drive = make_stack(sim, capacity=256 * KiB,
                                      readahead=params)
    sim.run_until_event(cache.write(1, 0, 0, 64 * KiB), limit=1.0)
    dirty_before = cache.dirty_pages

    def churner(sim):
        offset = 10 * 10**9 - 10 * 10**9 % (4 * KiB)
        for _ in range(200):
            yield cache.read(2, 0, offset, 4 * KiB)
            offset += 4 * KiB

    process = sim.process(churner(sim))
    sim.run_until_event(process, limit=60.0)
    # Dirty pages still tracked (or already written back) — never lost.
    written = drive.stats.counter("media_write").total_bytes
    assert cache.dirty_pages * 4 * KiB + written >= dirty_before * 4 * KiB
    assert cache.stats.counter("dirty_evictions").count == 0
    sim.run()
    assert drive.stats.counter("media_write").total_bytes == 64 * KiB


def test_write_validation():
    sim = Simulator()
    cache, _layer, _drive = make_stack(sim)
    with pytest.raises(ValueError):
        cache.write(1, 0, 0, 0)


def test_params_validation():
    with pytest.raises(ValueError):
        ReadaheadParams(dirty_ratio=0.0)
    with pytest.raises(ValueError):
        ReadaheadParams(dirty_ratio=1.0)
    with pytest.raises(ValueError):
        ReadaheadParams(writeback_period=0)
