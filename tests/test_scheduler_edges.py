"""Edge-case tests for OS schedulers and the block layer.

Covers the paths the main scheduler tests skip: write expiry in
deadline, anonymous streams in CFQ, think-time estimation gates,
anticipation bookkeeping across mixed traffic, and elevator wrap
behaviour under churn.
"""

import pytest

from repro.host.schedulers import (
    AnticipatoryScheduler,
    CFQScheduler,
    DeadlineScheduler,
    Dispatch,
    Idle,
    NoopScheduler,
)
from repro.io import IOKind, IORequest
from repro.units import KiB, MiB


def read(offset, size=64 * KiB, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


def write(offset, size=64 * KiB, stream=None):
    return IORequest(kind=IOKind.WRITE, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


# ---------------------------------------------------------------------------
# Deadline: write expiry
# ---------------------------------------------------------------------------

def test_deadline_write_expiry_looser_than_read():
    scheduler = DeadlineScheduler(read_expire=0.5, write_expire=5.0)
    old_write = write(9 * MiB)
    scheduler.add(old_write, now=0.0)
    scheduler.add(read(1 * MiB), now=0.6)
    # At t=1.0 the write (deadline t=5) has NOT expired: sweep order wins.
    assert scheduler.decide(1.0).request.offset == 1 * MiB
    # At t=6 it has: it preempts.
    scheduler.add(read(2 * MiB), now=5.9)
    assert scheduler.decide(6.0).request is old_write


def test_deadline_skips_already_dispatched_expiry_entries():
    scheduler = DeadlineScheduler(read_expire=0.1)
    first = read(1 * MiB)
    second = read(2 * MiB)
    scheduler.add(first, 0.0)
    scheduler.add(second, 0.0)
    assert scheduler.decide(0.0).request is first  # sweep picks it
    # Later, first's (stale) deadline entry must not be re-dispatched.
    decision = scheduler.decide(1.0)
    assert decision.request is second


# ---------------------------------------------------------------------------
# CFQ: anonymous streams, think-time gate
# ---------------------------------------------------------------------------

def test_cfq_anonymous_requests_share_a_queue():
    scheduler = CFQScheduler()
    scheduler.add(read(0, stream=None), 0.0)
    scheduler.add(read(1 * MiB, stream=None), 0.0)
    first = scheduler.decide(0.0)
    second = scheduler.decide(0.0)
    assert isinstance(first, Dispatch) and isinstance(second, Dispatch)


def test_cfq_think_time_gate_disables_idle():
    scheduler = CFQScheduler(slice_idle=0.008)
    # Establish a long think time for stream 1 (~50 ms gaps).
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.001)
    again = read(64 * KiB, stream=1)
    scheduler.add(again, 0.051)  # 50 ms think
    scheduler.decide(0.051)
    scheduler.on_complete(again, 0.052)
    # Queue another stream; CFQ must NOT idle for slow-thinking stream 1.
    scheduler.add(read(50 * MiB, stream=2), 0.053)
    decision = scheduler.decide(0.053)
    assert isinstance(decision, Dispatch)
    assert decision.request.stream_id == 2


def test_cfq_empty_decide_returns_none():
    scheduler = CFQScheduler()
    assert scheduler.decide(0.0) is None


# ---------------------------------------------------------------------------
# Anticipatory: think gate, mixed traffic, skip counters
# ---------------------------------------------------------------------------

def test_anticipatory_think_gate_skips_slow_streams():
    scheduler = AnticipatoryScheduler(antic_timeout=0.0067)
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.001)
    # Stream 1 takes 20 ms to come back: recorded think >> window.
    late = read(64 * KiB, stream=1)
    scheduler.add(late, 0.021)
    scheduler.decide(0.021)
    scheduler.on_complete(late, 0.022)
    scheduler.add(read(50 * MiB, stream=2), 0.023)
    decision = scheduler.decide(0.023)
    assert isinstance(decision, Dispatch)  # no idle for a slow thinker
    assert scheduler.anticipation_skips >= 1


def test_anticipatory_write_in_stream_cancels_anticipation():
    scheduler = AnticipatoryScheduler()
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.001)
    w = write(64 * KiB, stream=1)
    scheduler.add(w, 0.002)
    # A queued write does not satisfy read anticipation: AS holds...
    assert isinstance(scheduler.decide(0.002), Idle)
    # ...until the window expires, then dispatches the write.
    decision = scheduler.decide(0.01)
    assert isinstance(decision, Dispatch)
    assert decision.request is w
    scheduler.on_complete(w, 0.011)  # write completion: no anticipation
    scheduler.add(read(50 * MiB, stream=2), 0.012)
    assert isinstance(scheduler.decide(0.012), Dispatch)


def test_anticipatory_idle_on_empty_queue_keeps_window():
    scheduler = AnticipatoryScheduler(antic_timeout=0.0067)
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.001)
    decision = scheduler.decide(0.002)  # nothing queued yet
    assert isinstance(decision, Idle)
    assert decision.until == pytest.approx(0.001 + 0.0067)
    # Past the window, an empty queue is just empty.
    assert scheduler.decide(0.05) is None


def test_anticipatory_far_request_from_same_stream_not_anticipated():
    scheduler = AnticipatoryScheduler(near_bytes=1 * MiB)
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.001)
    far = read(10 * 1024 * MiB // 1024 * KiB * 16, stream=1)  # ~10 GB away
    scheduler.add(far, 0.002)
    decision = scheduler.decide(0.002)
    # Not "near": anticipation holds (Idle), not instant dispatch of far.
    assert isinstance(decision, Idle)


# ---------------------------------------------------------------------------
# Noop: merge chains
# ---------------------------------------------------------------------------

def test_noop_merge_chain_accumulates():
    scheduler = NoopScheduler()
    first = read(0, 64 * KiB)
    scheduler.add(first, 0.0)
    scheduler.add(read(64 * KiB, 64 * KiB), 0.0)
    scheduler.add(read(128 * KiB, 64 * KiB), 0.0)
    assert scheduler.merges == 2
    decision = scheduler.decide(0.0)
    assert decision.request.size == 192 * KiB
    assert len(decision.request.annotations["merged"]) == 2


def test_noop_merge_does_not_cross_gap():
    scheduler = NoopScheduler()
    scheduler.add(read(0, 64 * KiB), 0.0)
    scheduler.add(read(256 * KiB, 64 * KiB), 0.0)  # gap
    assert scheduler.merges == 0
    assert len(scheduler) == 2
