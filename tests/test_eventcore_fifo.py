"""Event-core FIFO property and backend-selection tests.

Two pins on :mod:`repro.sim.eventcore`:

1. **Same-timestamp FIFO is permutation-safe on every backend.** The
   kernel's determinism contract is (when, push-sequence) ordering;
   the backends implement it with three different structures (C heap,
   calendar buckets + front buffer, heapq tuples). Mirroring
   ``tests/test_drive_metamorphic.py``, every arrival permutation of a
   timestamp multiset must pop back in stable-sorted order — equal
   timestamps strictly in arrival order, on every backend, both
   through raw core ``push``/``pop`` and through the driven ``run()``
   loop.

2. **Selection is explicit and never degrades silently.** The
   ``REPRO_EVENTCORE`` override and ``Simulator(backend=...)`` must
   select exactly what they name: unknown names raise ``ValueError``,
   requesting the compiled core in an interpreter that could not
   import it raises ``RuntimeError`` — a forced backend is a
   correctness/benchmark pin, so a quiet fallback would invalidate
   whatever the caller was pinning.
"""

import itertools

import pytest

from repro.sim import Simulator
from repro.sim import eventcore
from repro.sim.eventcore import available_backends, backend_token, \
    compiled_available, resolve_backend
from repro.sim.events import Event

BACKENDS = available_backends()

#: Timestamp multiset with heavy duplication: three same-instant
#: groups, including the head timestamp, so batching paths engage.
WHENS = (1.0, 0.0, 1.0, 0.5, 0.0, 1.0)


# -- FIFO property ----------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_same_timestamp_pops_fifo_under_all_permutations(backend):
    """Every arrival permutation pops back stable-sorted by (when, arrival)."""
    for order in itertools.permutations(range(len(WHENS))):
        sim = Simulator(backend=backend)
        arrivals = [(WHENS[index], index) for index in order]
        for when, ident in arrivals:
            sim._push(when, Event(sim, name=str(ident)))
        # sorted() is stable: equal whens keep arrival order — exactly
        # the kernel's FIFO contract.
        expected = [ident for _when, ident in
                    sorted(arrivals, key=lambda pair: pair[0])]
        popped = []
        while sim.queue_length:
            when, event = sim._core.pop()
            popped.append((when, int(event.name)))
        assert [ident for _when, ident in popped] == expected, \
            f"backend {backend} broke FIFO for arrival order {order}"
        assert [when for when, _ident in popped] == sorted(WHENS)


@pytest.mark.parametrize("backend", BACKENDS)
def test_pop_from_empty_core_raises(backend):
    sim = Simulator(backend=backend)
    with pytest.raises(IndexError):
        sim._core.pop()


@pytest.mark.parametrize("backend", BACKENDS)
def test_driven_same_instant_processes_run_in_spawn_order(backend):
    """Through run(): same-instant wakeups dispatch in creation order."""
    for order in itertools.permutations(range(4)):
        log = []
        sim = Simulator(backend=backend)

        def worker(sim, ident, delay):
            yield sim.timeout(delay)
            log.append(ident)

        # Everybody fires at t=1.0 via different schedule shapes, but
        # creation order (push order at t=1.0 is resolved by the
        # bootstrap order at t=0) must win within the instant.
        for ident in order:
            sim.process(worker(sim, ident, 1.0))
        sim.run()
        assert log == list(order), \
            f"backend {backend} reordered a same-instant batch"


def test_interleaved_push_pop_keeps_global_order():
    """Pops between pushes never disturb FIFO (calendar front refills)."""
    for backend in BACKENDS:
        sim = Simulator(backend=backend)
        for step in range(8):
            sim._push(float(step % 3), Event(sim, name=f"a{step}"))
        drained = [sim._core.pop() for _ in range(4)]
        for step in range(8, 12):
            sim._push(float(step % 3), Event(sim, name=f"a{step}"))
        while sim.queue_length:
            drained.append(sim._core.pop())
        whens = [when for when, _event in drained]
        # Each drain phase is internally sorted; a later push may only
        # precede survivors if strictly earlier, never reorder equals.
        assert whens[:4] == sorted(whens[:4])
        assert whens[4:] == sorted(whens[4:])
        names = [event.name for _when, event in drained]
        assert len(set(names)) == 12  # nothing lost, nothing duplicated


# -- forced selection -------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_env_override_selects_backend(monkeypatch, backend):
    monkeypatch.setenv(eventcore.ENV_VAR, backend)
    sim = Simulator()
    assert sim.backend == backend
    assert sim._core.backend == backend


def test_explicit_argument_beats_environment(monkeypatch):
    monkeypatch.setenv(eventcore.ENV_VAR, "heapq")
    assert Simulator(backend="calendar").backend == "calendar"


def test_unknown_backend_raises_value_error(monkeypatch):
    with pytest.raises(ValueError, match="unknown event-core backend"):
        Simulator(backend="quantum")
    monkeypatch.setenv(eventcore.ENV_VAR, "quantum")
    with pytest.raises(ValueError, match="REPRO_EVENTCORE"):
        Simulator()


def test_unavailable_compiled_raises_runtime_error(monkeypatch):
    """Forcing the compiled core without the extension fails loudly."""
    monkeypatch.setattr(eventcore, "_compiled", None)
    assert not compiled_available()
    assert "compiled" not in available_backends()
    with pytest.raises(RuntimeError, match="not importable"):
        Simulator(backend="compiled")
    monkeypatch.setenv(eventcore.ENV_VAR, "compiled")
    with pytest.raises(RuntimeError, match="C compiler"):
        Simulator()


def test_auto_selection_prefers_compiled_then_calendar(monkeypatch):
    monkeypatch.delenv(eventcore.ENV_VAR, raising=False)
    if compiled_available():
        assert resolve_backend(None) == "compiled"
        assert backend_token(None).startswith("compiled/")
    monkeypatch.setattr(eventcore, "_compiled", None)
    assert resolve_backend(None) == "calendar"
    assert backend_token(None) == "calendar"
