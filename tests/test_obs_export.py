"""Exporters and CLIs: Chrome trace, JSONL round-trip, Prometheus,
``python -m repro.obs.report`` and the runner's ``--trace-out``."""

import json

import pytest

from repro import obs
from repro.core import ServerParams, StreamServer
from repro.disk.drive import DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.disk.specs import DISKSIM_GENERIC
from repro.experiments.runner import main as runner_main
from repro.obs.attribution import attribute
from repro.obs.export import (export_chrome_trace, export_jsonl,
                              export_prometheus, read_jsonl,
                              validate_chrome_trace)
from repro.obs.report import main as report_main
from repro.sim import Simulator
from repro.units import KiB
from repro.workload import ClientFleet, StreamSpec


@pytest.fixture(scope="module")
def traced_context():
    """One telemetry-on traced run shared by the exporter tests."""
    with obs.activated(
            obs.ObsContext(telemetry_interval=0.02)) as context:
        sim = Simulator()
        drive = DiskDrive(sim, DISKSIM_GENERIC,
                          DriveConfig(rotation_mode=RotationMode.EXPECTED))
        server = StreamServer(sim, drive, ServerParams())
        size = 64 * KiB
        spacing = drive.capacity_bytes // 4
        spacing -= spacing % size
        specs = [StreamSpec(stream_id=i, disk_id=0,
                            start_offset=i * spacing, request_size=size)
                 for i in range(4)]
        ClientFleet(sim, server, specs).run(duration=0.2)
    context.spans.close_open(sim.now)
    return context


def test_chrome_trace_valid_and_viewable(tmp_path, traced_context):
    path = tmp_path / "trace.json"
    payload = export_chrome_trace(traced_context, str(path),
                                  meta={"run": "unit"})
    assert validate_chrome_trace(payload) == []
    on_disk = json.loads(path.read_text())
    assert validate_chrome_trace(on_disk) == []
    assert on_disk["otherData"]["run"] == "unit"
    assert on_disk["otherData"]["spans"] == len(traced_context.spans)
    phases = {event["ph"] for event in on_disk["traceEvents"]}
    assert "X" in phases
    # Spans of one trace share a lane (tid) so phases stack visually.
    tids = {event["tid"] for event in on_disk["traceEvents"]}
    assert len(tids) > 1


def test_chrome_validator_catches_garbage():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
    assert validate_chrome_trace({"traceEvents": []}) == []


def test_jsonl_round_trip(tmp_path, traced_context):
    path = tmp_path / "trace.jsonl"
    lines = export_jsonl(traced_context, str(path), meta={"run": "unit"})
    meta, spans, series = read_jsonl(str(path))
    assert lines == 1 + len(spans) + len(series)
    assert meta["run"] == "unit"
    assert len(spans) == len(traced_context.spans)
    assert series, "telemetry series missing from export"
    # The round-tripped spans attribute identically to the live ones.
    live = attribute(traced_context.spans.spans)
    loaded = attribute(spans)
    assert loaded.requests == live.requests
    assert loaded.total_latency_s == pytest.approx(live.total_latency_s)
    assert loaded.component_s == pytest.approx(live.component_s)


def test_prometheus_dump(tmp_path, traced_context):
    path = tmp_path / "metrics.prom"
    count = export_prometheus(traced_context, str(path))
    assert count > 0
    text = path.read_text()
    assert "# TYPE" in text
    assert "server_completed" in text.replace(".", "_")


def test_report_cli(tmp_path, traced_context, capsys):
    path = tmp_path / "trace.jsonl"
    export_jsonl(traced_context, str(path))
    assert report_main([str(path)]) == 0
    output = capsys.readouterr().out
    assert "latency attribution" in output
    assert "telemetry" in output
    assert report_main([str(tmp_path / "missing.jsonl")]) == 2


def test_runner_trace_out(tmp_path, capsys):
    """A traced smoke figure writes a valid Chrome trace + JSONL log."""
    trace_path = tmp_path / "fig10-trace.json"
    exit_code = runner_main(["fig10", "--scale", "smoke",
                             "--trace-out", str(trace_path),
                             "--telemetry", "0.05"])
    assert exit_code == 0
    payload = json.loads(trace_path.read_text())
    assert validate_chrome_trace(payload) == []
    assert payload["traceEvents"], "traced run produced no events"
    meta, spans, series = read_jsonl(str(trace_path) + ".jsonl")
    assert meta["figures"] == ["fig10"]
    assert spans
    assert series, "telemetry series missing"
    assert (tmp_path / "fig10-trace.json.prom").read_text()
    assert "[trace:" in capsys.readouterr().out


def test_runner_telemetry_requires_trace_out():
    with pytest.raises(SystemExit):
        runner_main(["fig10", "--telemetry", "0.05"])
