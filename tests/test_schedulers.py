"""Unit tests for the OS I/O schedulers (decision logic, no device)."""

import pytest

from repro.host.schedulers import (
    AnticipatoryScheduler,
    CFQScheduler,
    DeadlineScheduler,
    Dispatch,
    Idle,
    NoopScheduler,
    make_scheduler,
)
from repro.host.schedulers.base import ElevatorQueue
from repro.io import IOKind, IORequest
from repro.units import KiB, MiB


def read(offset, size=64 * KiB, stream=None, disk=0):
    return IORequest(kind=IOKind.READ, disk_id=disk, offset=offset,
                     size=size, stream_id=stream)


def write(offset, size=64 * KiB, stream=None):
    return IORequest(kind=IOKind.WRITE, disk_id=0, offset=offset,
                     size=size, stream_id=stream)


# ---------------------------------------------------------------------------
# ElevatorQueue
# ---------------------------------------------------------------------------

def test_elevator_sweeps_in_offset_order():
    elevator = ElevatorQueue()
    requests = [read(o * MiB) for o in (5, 1, 3)]
    for request in requests:
        elevator.add(request)
    picked = [elevator.pick().offset for _ in range(3)]
    assert picked == [1 * MiB, 3 * MiB, 5 * MiB]


def test_elevator_wraps_clook():
    elevator = ElevatorQueue()
    elevator.position = 4 * MiB
    for offset in (1 * MiB, 6 * MiB):
        elevator.add(read(offset))
    assert elevator.pick().offset == 6 * MiB   # ahead of cursor first
    assert elevator.pick().offset == 1 * MiB   # then wrap to lowest


def test_elevator_remove():
    elevator = ElevatorQueue()
    target = read(2 * MiB)
    elevator.add(read(1 * MiB))
    elevator.add(target)
    elevator.remove(target)
    assert len(elevator) == 1
    assert elevator.pick().offset == 1 * MiB


def test_elevator_pick_empty_returns_none():
    assert ElevatorQueue().pick() is None


# ---------------------------------------------------------------------------
# Noop
# ---------------------------------------------------------------------------

def test_noop_fifo_order():
    scheduler = NoopScheduler(merge=False)
    for offset in (5 * MiB, 1 * MiB, 3 * MiB):
        scheduler.add(read(offset), now=0.0)
    order = [scheduler.decide(0.0).request.offset for _ in range(3)]
    assert order == [5 * MiB, 1 * MiB, 3 * MiB]
    assert scheduler.decide(0.0) is None


def test_noop_back_merge():
    scheduler = NoopScheduler()
    first = read(0, 64 * KiB)
    second = read(64 * KiB, 64 * KiB)
    scheduler.add(first, 0.0)
    scheduler.add(second, 0.0)
    assert scheduler.merges == 1
    decision = scheduler.decide(0.0)
    assert decision.request is first
    assert decision.request.size == 128 * KiB
    assert decision.request.annotations["merged"] == [second]
    assert scheduler.decide(0.0) is None


def test_noop_no_merge_across_kinds():
    scheduler = NoopScheduler()
    scheduler.add(read(0, 64 * KiB), 0.0)
    scheduler.add(write(64 * KiB, 64 * KiB), 0.0)
    assert scheduler.merges == 0
    assert len(scheduler) == 2


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------

def test_deadline_sweep_order_when_fresh():
    scheduler = DeadlineScheduler()
    for offset in (5 * MiB, 1 * MiB):
        scheduler.add(read(offset), now=0.0)
    assert scheduler.decide(0.0).request.offset == 1 * MiB


def test_deadline_expired_request_preempts():
    scheduler = DeadlineScheduler(read_expire=0.5)
    late = read(9 * MiB)
    scheduler.add(late, now=0.0)
    scheduler.add(read(1 * MiB), now=0.4)
    # At t=0.6 the 9 MiB request is past its 0.5 s deadline.
    assert scheduler.decide(0.6).request is late
    assert scheduler.expired_dispatches == 1
    assert scheduler.decide(0.6).request.offset == 1 * MiB


def test_deadline_validation():
    with pytest.raises(ValueError):
        DeadlineScheduler(read_expire=0)


# ---------------------------------------------------------------------------
# Anticipatory
# ---------------------------------------------------------------------------

def test_anticipatory_idles_for_last_stream():
    scheduler = AnticipatoryScheduler(antic_timeout=0.006)
    first = read(0, stream=1)
    scheduler.add(first, 0.0)
    assert scheduler.decide(0.0).request is first
    scheduler.on_complete(first, 0.001)
    # Another stream's request is queued, but we anticipate stream 1.
    scheduler.add(read(50 * MiB, stream=2), 0.002)
    decision = scheduler.decide(0.002)
    assert isinstance(decision, Idle)
    assert decision.until == pytest.approx(0.007)


def test_anticipatory_dispatches_anticipated_request():
    scheduler = AnticipatoryScheduler()
    first = read(0, stream=1)
    scheduler.add(first, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(first, 0.001)
    scheduler.add(read(50 * MiB, stream=2), 0.002)
    nearby = read(64 * KiB, stream=1)
    scheduler.add(nearby, 0.003)
    decision = scheduler.decide(0.003)
    assert isinstance(decision, Dispatch)
    assert decision.request is nearby
    assert scheduler.anticipation_hits == 1


def test_anticipatory_times_out_to_elevator():
    scheduler = AnticipatoryScheduler(antic_timeout=0.006)
    first = read(0, stream=1)
    scheduler.add(first, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(first, 0.001)
    other = read(50 * MiB, stream=2)
    scheduler.add(other, 0.002)
    decision = scheduler.decide(0.010)  # past the window
    assert isinstance(decision, Dispatch)
    assert decision.request is other
    assert scheduler.anticipation_timeouts == 1


def test_anticipatory_batch_budget_expires():
    scheduler = AnticipatoryScheduler(batch_expire=0.1)
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.0)
    # Same stream keeps completing past its batch budget.
    later = read(64 * KiB, stream=1)
    scheduler.add(later, 0.2)
    scheduler.decide(0.2)
    scheduler.on_complete(later, 0.2)  # 0.2 > batch_expire since 0.0
    scheduler.add(read(50 * MiB, stream=2), 0.21)
    decision = scheduler.decide(0.21)
    assert isinstance(decision, Dispatch)  # no Idle: budget exhausted


def test_anticipatory_no_anticipation_for_writes():
    scheduler = AnticipatoryScheduler()
    request = write(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.001)
    scheduler.add(read(50 * MiB, stream=2), 0.002)
    assert isinstance(scheduler.decide(0.002), Dispatch)


def test_anticipatory_validation():
    with pytest.raises(ValueError):
        AnticipatoryScheduler(antic_timeout=-1)
    with pytest.raises(ValueError):
        AnticipatoryScheduler(batch_expire=0)


# ---------------------------------------------------------------------------
# CFQ
# ---------------------------------------------------------------------------

def test_cfq_serves_active_stream_within_slice():
    scheduler = CFQScheduler(slice_sync=0.1)
    scheduler.add(read(0, stream=1), 0.0)
    scheduler.add(read(50 * MiB, stream=2), 0.0)
    scheduler.add(read(64 * KiB, stream=1), 0.0)
    first = scheduler.decide(0.0)
    assert first.request.stream_id == 1
    second = scheduler.decide(0.01)
    assert second.request.stream_id == 1  # still stream 1's slice


def test_cfq_rotates_on_slice_expiry():
    scheduler = CFQScheduler(slice_sync=0.1)
    scheduler.add(read(0, stream=1), 0.0)
    scheduler.add(read(50 * MiB, stream=2), 0.0)
    scheduler.decide(0.0)
    scheduler.add(read(64 * KiB, stream=1), 0.05)
    decision = scheduler.decide(0.2)  # slice expired
    assert decision.request.stream_id == 2


def test_cfq_idles_on_empty_active_queue():
    scheduler = CFQScheduler(slice_idle=0.008)
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.add(read(50 * MiB, stream=2), 0.001)
    scheduler.on_complete(request, 0.002)
    decision = scheduler.decide(0.002)
    assert isinstance(decision, Idle)
    assert decision.until == pytest.approx(0.010)


def test_cfq_moves_on_after_idle_expiry():
    scheduler = CFQScheduler(slice_idle=0.008)
    request = read(0, stream=1)
    scheduler.add(request, 0.0)
    scheduler.decide(0.0)
    scheduler.on_complete(request, 0.002)
    scheduler.add(read(50 * MiB, stream=2), 0.003)
    decision = scheduler.decide(0.02)  # idle window long gone
    assert isinstance(decision, Dispatch)
    assert decision.request.stream_id == 2


def test_cfq_round_robin_fairness():
    scheduler = CFQScheduler(slice_sync=0.01, slice_idle=0.0)
    for stream in (1, 2, 3):
        for i in range(2):
            scheduler.add(read(stream * 10 * MiB + i * 64 * KiB,
                               stream=stream), 0.0)
    served = []
    now = 0.0
    while True:
        decision = scheduler.decide(now)
        if decision is None:
            break
        if isinstance(decision, Idle):
            now = decision.until
            continue
        served.append(decision.request.stream_id)
        now += 0.02  # each request outlives the slice
    # Every stream gets served; no stream is starved.
    assert sorted(set(served)) == [1, 2, 3]
    assert len(served) == 6


def test_cfq_validation():
    with pytest.raises(ValueError):
        CFQScheduler(slice_sync=0)
    with pytest.raises(ValueError):
        CFQScheduler(slice_idle=-1)


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

def test_make_scheduler_names():
    assert isinstance(make_scheduler("noop"), NoopScheduler)
    assert isinstance(make_scheduler("deadline"), DeadlineScheduler)
    assert isinstance(make_scheduler("anticipatory"), AnticipatoryScheduler)
    assert isinstance(make_scheduler("as"), AnticipatoryScheduler)
    assert isinstance(make_scheduler("cfq"), CFQScheduler)
    with pytest.raises(ValueError):
        make_scheduler("bfq")
