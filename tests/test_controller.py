"""Tests for the controller: routing, prefetch cache, bandwidth ceiling."""

import pytest

from repro.controller import ControllerSpec, DiskController, PrefetchCache
from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.disk.mechanics import RotationMode
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB, MiB


def make_controller(sim, num_disks=2, spec=None, disk_spec=None):
    disks = {
        disk_id: DiskDrive(
            sim, disk_spec or DISKSIM_GENERIC,
            config=DriveConfig(rotation_mode=RotationMode.EXPECTED),
            name=f"d{disk_id}")
        for disk_id in range(num_disks)
    }
    return DiskController(sim, spec or ControllerSpec(), disks)


def read(disk_id, offset, size, stream=None):
    return IORequest(kind=IOKind.READ, disk_id=disk_id, offset=offset,
                     size=size, stream_id=stream)


# ---------------------------------------------------------------------------
# PrefetchCache unit tests
# ---------------------------------------------------------------------------

def test_prefetch_cache_disabled_when_zero():
    cache = PrefetchCache(cache_bytes=0, prefetch_bytes=0)
    assert not cache.enabled
    assert not cache.covers(0, 0, 4096)
    cache.insert_extent(0, 0, 4096)  # no-op, no crash
    cache.invalidate(0, 0, 4096)


def test_prefetch_cache_extent_alignment():
    cache = PrefetchCache(cache_bytes=8 * MiB, prefetch_bytes=1 * MiB)
    offset, size = cache.extent_of(1_500_000)
    assert offset == 1_500_000 - 1_500_000 % (1 * MiB)
    assert size == 1 * MiB
    assert offset % (1 * MiB) == 0


def test_prefetch_cache_hit_after_insert():
    cache = PrefetchCache(cache_bytes=4 * MiB, prefetch_bytes=1 * MiB)
    cache.insert_extent(0, 0, 1 * MiB)
    assert cache.covers(0, 0, 64 * KiB)
    assert cache.covers(0, 512 * KiB, 512 * KiB)
    assert not cache.covers(0, 1 * MiB, 64 * KiB)


def test_prefetch_cache_disks_isolated():
    cache = PrefetchCache(cache_bytes=4 * MiB, prefetch_bytes=1 * MiB)
    cache.insert_extent(0, 0, 1 * MiB)
    assert not cache.covers(1, 0, 64 * KiB)


def test_prefetch_cache_extent_count():
    cache = PrefetchCache(cache_bytes=128 * MiB, prefetch_bytes=4 * MiB)
    assert cache.num_extents == 32


def test_prefetch_cache_lru_thrash():
    cache = PrefetchCache(cache_bytes=2 * MiB, prefetch_bytes=1 * MiB)
    cache.insert_extent(0, 0, 1 * MiB)
    cache.insert_extent(0, 10 * MiB, 1 * MiB)
    cache.insert_extent(0, 20 * MiB, 1 * MiB)  # evicts first
    assert not cache.peek(0, 0, 64 * KiB)
    assert cache.peek(0, 20 * MiB, 64 * KiB)


def test_prefetch_cache_invalidate():
    cache = PrefetchCache(cache_bytes=4 * MiB, prefetch_bytes=1 * MiB)
    cache.insert_extent(0, 0, 1 * MiB)
    cache.invalidate(0, 256 * KiB, 64 * KiB)
    assert not cache.peek(0, 0, 64 * KiB)


def test_prefetch_cache_validation():
    with pytest.raises(ValueError):
        PrefetchCache(cache_bytes=-1, prefetch_bytes=0)
    with pytest.raises(ValueError):
        PrefetchCache(cache_bytes=1 * MiB, prefetch_bytes=1000)  # unaligned


# ---------------------------------------------------------------------------
# DiskController integration
# ---------------------------------------------------------------------------

def test_controller_routes_to_correct_disk():
    sim = Simulator()
    controller = make_controller(sim, num_disks=2)
    event = controller.submit(read(1, 0, 64 * KiB))
    sim.run()
    assert event.value.latency > 0
    assert controller.disks[1].stats.counter("completed").count == 1
    assert controller.disks[0].stats.counter("completed").count == 0


def test_controller_rejects_unknown_disk():
    sim = Simulator()
    controller = make_controller(sim, num_disks=2)
    with pytest.raises(ValueError):
        controller.submit(read(7, 0, 64 * KiB))


def test_controller_rejects_too_many_disks():
    sim = Simulator()
    disks = {
        i: DiskDrive(sim, DISKSIM_GENERIC, name=f"d{i}") for i in range(3)
    }
    with pytest.raises(ValueError):
        DiskController(sim, ControllerSpec(num_ports=2), disks)


def test_controller_prefetch_serves_subsequent_requests_from_cache():
    sim = Simulator()
    spec = ControllerSpec().with_prefetch(cache_bytes=16 * MiB,
                                          prefetch_bytes=1 * MiB)
    controller = make_controller(sim, num_disks=1, spec=spec)
    first = controller.submit(read(0, 0, 64 * KiB))
    sim.run()
    miss_latency = first.value.latency
    # Rest of the 1 MiB extent is now controller-cached.
    second = controller.submit(read(0, 512 * KiB, 64 * KiB))
    sim.run()
    hit_latency = second.value.latency
    assert controller.stats.counter("cache_hits").count == 1
    assert hit_latency < miss_latency / 2


def test_controller_prefetch_spans_extents():
    sim = Simulator()
    spec = ControllerSpec().with_prefetch(cache_bytes=16 * MiB,
                                          prefetch_bytes=1 * MiB)
    controller = make_controller(sim, num_disks=1, spec=spec)
    # Request straddling two extents fetches both.
    event = controller.submit(read(0, 1 * MiB - 64 * KiB, 128 * KiB))
    sim.run()
    assert event.value is not None
    assert controller.stats.counter("prefetched").total_bytes == 2 * MiB


def test_controller_concurrent_misses_coalesce():
    sim = Simulator()
    spec = ControllerSpec().with_prefetch(cache_bytes=16 * MiB,
                                          prefetch_bytes=1 * MiB)
    controller = make_controller(sim, num_disks=1, spec=spec)
    events = [controller.submit(read(0, i * 64 * KiB, 64 * KiB))
              for i in range(4)]
    sim.run()
    assert all(e.processed for e in events)
    # All four land in one extent: exactly one disk fetch.
    assert controller.stats.counter("prefetched").count == 1


def test_controller_write_invalidates_cache():
    sim = Simulator()
    spec = ControllerSpec().with_prefetch(cache_bytes=16 * MiB,
                                          prefetch_bytes=1 * MiB)
    controller = make_controller(sim, num_disks=1, spec=spec)
    controller.submit(read(0, 0, 64 * KiB))
    sim.run()
    assert controller.cache.peek(0, 0, 64 * KiB)
    write = IORequest(kind=IOKind.WRITE, disk_id=0, offset=0, size=64 * KiB)
    controller.submit(write)
    sim.run()
    assert not controller.cache.peek(0, 0, 64 * KiB)


def test_controller_bus_moves_every_completed_byte():
    sim = Simulator()
    controller = make_controller(sim, num_disks=2)
    for disk_id in (0, 1):
        for i in range(4):
            controller.submit(read(disk_id, i * 64 * KiB, 64 * KiB))
    sim.run()
    assert controller.bus.bytes_moved == 8 * 64 * KiB


def test_controller_aggregate_bandwidth_is_a_ceiling():
    """Many cache hits can't exceed the bus rate."""
    sim = Simulator()
    spec = ControllerSpec(aggregate_bandwidth=10 * MiB)
    controller = make_controller(sim, num_disks=1, spec=spec)
    # Prime drive cache so everything after is instant except the bus.
    controller.submit(read(0, 0, 1 * MiB))
    sim.run()
    start = sim.now
    events = [controller.submit(read(0, i * 64 * KiB, 64 * KiB))
              for i in range(16)]  # 1 MiB total, all drive-cache hits
    sim.run()
    elapsed = sim.now - start
    assert all(e.processed for e in events)
    assert elapsed >= (1 * MiB) / (10 * MiB) * 0.95


def test_controller_queue_depth_backpressure():
    sim = Simulator()
    spec = ControllerSpec(queue_depth=2)
    controller = make_controller(sim, num_disks=1, spec=spec)
    for i in range(6):
        controller.submit(read(0, i * (1 * MiB), 64 * KiB))
    sim.run(until=0.0001)
    assert controller.queue_in_use <= 2
    sim.run()
    assert controller.stats.counter("completed").count == 6


def test_controller_homogeneous_disks_required():
    sim = Simulator()
    small = DISKSIM_GENERIC
    from dataclasses import replace
    big = replace(DISKSIM_GENERIC, capacity_bytes=160 * 10**9)
    disks = {0: DiskDrive(sim, small), 1: DiskDrive(sim, big)}
    with pytest.raises(ValueError):
        DiskController(sim, ControllerSpec(), disks)
