"""Declarative SLO engine: spec validation, evaluation, CLI gates.

The machine-checkable half of DESIGN.md §10: specs validate strictly
(a typo'd objective must fail loudly at load time, not silently pass at
evaluate time), every objective kind measures what it claims against
spans / result series / telemetry counters, missing evidence *fails*
the objective, and ``python -m repro.obs.report slo`` exits non-zero on
a violated spec — the property CI's fleet gates lean on.
"""

import io
import json

import pytest

from repro.obs import report as report_cli
from repro.obs.slo import SLOSpec, evaluate, load_spec
from repro.obs.spans import SpanRecorder


def make_spans(durations, category="client", error_at=()):
    """Closed root spans with the given durations (+ optional errored)."""
    recorder = SpanRecorder(capacity=None)
    for index, duration in enumerate(durations):
        span = recorder.begin("request", category, float(index))
        recorder.end(span, float(index) + duration)
        if index in error_at:
            span.set_arg("error", "timeout")
    return recorder.spans


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------

def test_spec_requires_name_and_objectives():
    with pytest.raises(ValueError):
        SLOSpec.from_dict({"objectives": [{"kind": "latency"}]})
    with pytest.raises(ValueError):
        SLOSpec.from_dict({"name": "x", "objectives": []})


@pytest.mark.parametrize("objective", [
    {"kind": "nonsense"},
    {"kind": "latency", "category": "client", "q": 1.5, "max_ms": 1.0},
    {"kind": "latency", "category": "client", "q": 0.99},
    {"kind": "latency", "q": 0.99, "max_ms": 1.0},
    {"kind": "series_max", "max": 1.0},
    {"kind": "series_min", "series": "s"},
    {"kind": "burn_rate", "metric": "m", "window_s": 1.0},
    {"kind": "burn_rate", "window_s": 1.0, "max_per_s": 1.0},
])
def test_spec_rejects_malformed_objectives(objective):
    with pytest.raises(ValueError):
        SLOSpec.from_dict({"name": "x", "objectives": [objective]})


def test_spec_round_trips_and_names_objectives():
    spec = SLOSpec.from_dict({"name": "x", "objectives": [
        {"kind": "series_max", "series": "s", "max": 1.0}]})
    assert spec.objectives[0]["name"] == "series_max#0"
    assert SLOSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()


def test_load_spec_module_attribute_and_file(tmp_path):
    spec = load_spec("repro.experiments.ext_fleet:SLO_SMOKE")
    assert spec.name == "ext-fleet-smoke"
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
    assert load_spec(str(path)).to_dict() == spec.to_dict()
    with pytest.raises(ValueError):
        load_spec("repro.experiments.ext_fleet:NO_SUCH_SPEC")


# ---------------------------------------------------------------------------
# objective evaluation
# ---------------------------------------------------------------------------

def test_latency_objective_pass_and_fail():
    spans = make_spans([0.010] * 95 + [0.500] * 5)
    spec = SLOSpec.from_dict({"name": "lat", "objectives": [
        {"name": "p50", "kind": "latency", "category": "client",
         "q": 0.5, "max_ms": 20.0},
        {"name": "p99", "kind": "latency", "category": "client",
         "q": 0.99, "max_ms": 20.0},
    ]})
    report = evaluate(spec, spans=spans)
    by_name = {r.name: r for r in report.results}
    assert by_name["p50"].ok and by_name["p50"].measured < 20.0
    assert not by_name["p99"].ok and by_name["p99"].measured > 400.0
    assert not report.ok and len(report.violations) == 1


def test_latency_excludes_errored_and_foreign_spans():
    spans = make_spans([0.001] * 10, error_at=(3,))
    spans += make_spans([9.9] * 5, category="server")
    spec = SLOSpec.from_dict({"name": "lat", "objectives": [
        {"kind": "latency", "category": "client", "q": 1.0,
         "max_ms": 2.0}]})
    report = evaluate(spec, spans=spans)
    assert report.ok, report.results[0]


def test_latency_without_evidence_fails():
    spec = SLOSpec.from_dict({"name": "lat", "objectives": [
        {"kind": "latency", "category": "client", "q": 0.5,
         "max_ms": 1e9}]})
    report = evaluate(spec)
    assert not report.ok
    assert report.results[0].measured is None


def test_series_objectives_all_x_and_single_x():
    series = {"throughput (MB/s)": {"100": 40.0, "1000": 9.0},
              "p99 (ms)": {100: 15.0, 1000: 80.0}}
    spec = SLOSpec.from_dict({"name": "s", "objectives": [
        {"name": "floor-all", "kind": "series_min",
         "series": "throughput (MB/s)", "min": 10.0},
        {"name": "floor-at-100", "kind": "series_min",
         "series": "throughput (MB/s)", "min": 10.0, "x": "100"},
        {"name": "ceiling-int-keys", "kind": "series_max",
         "series": "p99 (ms)", "max": 20.0, "x": "100"},
        {"name": "missing-x", "kind": "series_max",
         "series": "p99 (ms)", "max": 20.0, "x": "7"},
        {"name": "missing-series", "kind": "series_max",
         "series": "nope", "max": 20.0},
    ]})
    by_name = {r.name: r for r in evaluate(spec, series=series).results}
    assert not by_name["floor-all"].ok          # min over all = 9.0
    assert by_name["floor-at-100"].ok           # 40.0 at x=100
    assert by_name["ceiling-int-keys"].ok       # int key via str fallback
    assert not by_name["missing-x"].ok
    assert not by_name["missing-series"].ok


def test_burn_rate_objective():
    telemetry = [{"name": "server.shed", "kind": "counter",
                  "samples": [[0.0, 0], [1.0, 5], [2.0, 10],
                              [3.0, 200], [4.0, 205]]}]
    spec = SLOSpec.from_dict({"name": "b", "objectives": [
        {"name": "slow-ok", "kind": "burn_rate", "metric": "server.shed",
         "window_s": 10.0, "max_per_s": 100.0},
        {"name": "burst-caught", "kind": "burn_rate",
         "metric": "server.shed", "window_s": 1.0, "max_per_s": 100.0},
        {"name": "missing", "kind": "burn_rate", "metric": "nope",
         "window_s": 1.0, "max_per_s": 100.0},
    ]})
    by_name = {r.name: r
               for r in evaluate(spec, telemetry=telemetry).results}
    assert by_name["slow-ok"].ok           # ~67/s amortised over 3 s
    assert not by_name["burst-caught"].ok  # the 190/s spike at t=3
    assert not by_name["missing"].ok


def test_report_render_and_to_dict():
    spec = SLOSpec.from_dict({"name": "r", "objectives": [
        {"kind": "series_max", "series": "s", "max": 1.0}]})
    report = evaluate(spec, series={"s": {"0": 2.0}})
    out = io.StringIO()
    report.render(out)
    assert "VIOLATED" in out.getvalue()
    doc = report.to_dict()
    assert doc["slo"] == "r" and doc["ok"] is False
    assert doc["objectives"][0]["measured"] == 2.0


# ---------------------------------------------------------------------------
# CLI gate semantics
# ---------------------------------------------------------------------------

@pytest.fixture
def trace_jsonl(tmp_path):
    """A small exported event log with client spans + a shed counter."""
    from repro import obs
    from repro.obs.export import export_jsonl
    context = obs.ObsContext(telemetry_interval=None)
    recorder = context.spans
    for index in range(50):
        span = recorder.begin("request", "client", float(index))
        recorder.end(span, float(index) + 0.020)
    path = tmp_path / "trace.jsonl"
    export_jsonl(context, str(path), meta={"figures": ["test"]})
    return str(path)


def test_cli_slo_pass_exit_zero(trace_jsonl, tmp_path, capsys):
    spec = {"name": "gate", "objectives": [
        {"kind": "latency", "category": "client", "q": 0.99,
         "max_ms": 100.0}]}
    spec_path = tmp_path / "gate.json"
    spec_path.write_text(json.dumps(spec), encoding="utf-8")
    assert report_cli.main(["slo", "--spec", str(spec_path),
                            trace_jsonl]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_slo_degraded_exit_nonzero(trace_jsonl, tmp_path, capsys):
    spec = {"name": "gate", "objectives": [
        {"kind": "latency", "category": "client", "q": 0.5,
         "max_ms": 1.0}]}
    spec_path = tmp_path / "gate.json"
    spec_path.write_text(json.dumps(spec), encoding="utf-8")
    assert report_cli.main(["slo", "--spec", str(spec_path),
                            trace_jsonl]) == 1
    assert "VIOLATED" in capsys.readouterr().out


def test_cli_slo_runner_json_series(tmp_path, capsys):
    runner_json = tmp_path / "run.json"
    runner_json.write_text(json.dumps({"figures": {"fig": {"series": {
        "p99 (ms)": {"500": 120.0}}}}}), encoding="utf-8")
    spec_path = tmp_path / "gate.json"
    spec_path.write_text(json.dumps({"name": "g", "objectives": [
        {"kind": "series_max", "series": "p99 (ms)", "max": 200.0}]}),
        encoding="utf-8")
    assert report_cli.main(["slo", "--spec", str(spec_path),
                            "--runner-json", str(runner_json),
                            "--figure", "fig", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True and doc["objectives"][0]["measured"] == 120.0


def test_cli_slo_bad_spec_exit_two(trace_jsonl, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "b", "objectives": [
        {"kind": "wat"}]}), encoding="utf-8")
    assert report_cli.main(["slo", "--spec", str(bad), trace_jsonl]) == 2


def test_cli_report_format_json(trace_jsonl, capsys):
    assert report_cli.main(["--format", "json", trace_jsonl]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["spans_by_category"]["client"]["spans"] == 50
    assert doc["run"]["figures"] == ["test"]
    assert "telemetry" in doc and "attribution" in doc


# ---------------------------------------------------------------------------
# zero-overhead-off: importing/evaluating SLOs leaves obs dormant
# ---------------------------------------------------------------------------

def test_slo_layer_keeps_obs_off():
    from repro import obs
    assert not obs.current().enabled
    spec = load_spec("repro.experiments.ext_fleet_openloop:SLO_SMOKE")
    evaluate(spec, series={})
    assert not obs.current().enabled
