"""Tests for the static coarse-bitmap classifier ablation."""

import pytest

from repro.core import CoarseBitmapClassifier, SequentialClassifier, \
    ServerParams
from repro.io import IOKind, IORequest
from repro.units import GiB, KiB, MiB


CAPACITY = 80 * 10**9


def params(**kwargs):
    defaults = dict(classifier_block=64 * KiB, classifier_threshold=3)
    defaults.update(kwargs)
    return ServerParams(**defaults)


def read(offset, size=64 * KiB, disk=0):
    return IORequest(kind=IOKind.READ, disk_id=disk, offset=offset,
                     size=size)


def feed_sequential(classifier, start, total, size=64 * KiB, disk=0):
    """Feed sequential reads; returns (requests_until_detect, stream)."""
    offset = start
    count = 0
    while offset + size <= start + total:
        count += 1
        stream = classifier.route(read(offset, size, disk=disk),
                                  now=float(count))
        if stream is not None:
            return count, stream
        offset += size
    return count, None


def test_detects_with_fine_granularity_like_dynamic():
    coarse = CoarseBitmapClassifier(params(), CAPACITY,
                                    granularity=64 * KiB)
    needed, stream = feed_sequential(coarse, 1 * GiB, 16 * MiB)
    assert stream is not None
    assert needed <= 4


def test_coarse_granularity_detects_later():
    fine = CoarseBitmapClassifier(params(), CAPACITY,
                                  granularity=64 * KiB)
    coarse = CoarseBitmapClassifier(params(), CAPACITY,
                                    granularity=4 * MiB)
    fine_needed, _ = feed_sequential(fine, 1 * GiB, 64 * MiB)
    coarse_needed, coarse_stream = feed_sequential(coarse, 1 * GiB,
                                                   64 * MiB)
    assert coarse_stream is not None
    # 3 consecutive 4 MiB granules need ~8 MiB+ of reads vs ~192 KiB.
    assert coarse_needed > 10 * fine_needed


def test_memory_scales_inversely_with_granularity():
    fine = CoarseBitmapClassifier(params(), CAPACITY,
                                  granularity=64 * KiB)
    coarse = CoarseBitmapClassifier(params(), CAPACITY,
                                    granularity=16 * MiB)
    feed_sequential(fine, 0, 1 * MiB)
    feed_sequential(coarse, 0, 1 * MiB)
    assert fine.memory_bytes() > 100 * coarse.memory_bytes()


def test_dynamic_design_uses_far_less_memory_than_fine_static():
    """The paper's argument for dynamic region bitmaps, quantified."""
    dynamic = SequentialClassifier(params())
    static = CoarseBitmapClassifier(params(), CAPACITY,
                                    granularity=64 * KiB)
    for start in range(0, 20):
        feed_sequential(dynamic, start * GiB, 256 * KiB)
        feed_sequential(static, start * GiB, 256 * KiB)
    assert dynamic.bitmaps.memory_bytes() * 100 < static.memory_bytes()


def test_routing_identical_once_detected():
    coarse = CoarseBitmapClassifier(params(), CAPACITY,
                                    granularity=64 * KiB)
    _needed, stream = feed_sequential(coarse, 0, 16 * MiB)
    follow = read(stream.client_next)
    assert coarse.route(follow, now=100.0) is stream


def test_run_cleared_after_detection():
    """A second stream in the same area must re-establish evidence."""
    coarse = CoarseBitmapClassifier(params(), CAPACITY,
                                    granularity=64 * KiB)
    _needed, first = feed_sequential(coarse, 0, 16 * MiB)
    coarse.drop_stream(first)
    # Restarting in the same place is not instantly re-detected.
    restart = read(0)
    assert coarse.route(restart, now=200.0) is None


def test_validation():
    with pytest.raises(ValueError):
        CoarseBitmapClassifier(params(), CAPACITY, granularity=4 * KiB)
    with pytest.raises(ValueError):
        CoarseBitmapClassifier(params(), 512 * KiB, granularity=1 * MiB)


def test_expire_is_noop():
    coarse = CoarseBitmapClassifier(params(), CAPACITY,
                                    granularity=1 * MiB)
    feed_sequential(coarse, 0, 1 * MiB)
    assert coarse.expire_bitmaps(now=1e9) == 0


def test_works_inside_the_server():
    from repro.core import StreamServer
    from repro.disk import WD800JD
    from repro.disk.mechanics import RotationMode
    from repro.node import base_topology, build_node
    from repro.sim import Simulator

    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server_params = ServerParams(read_ahead=1 * MiB,
                                 memory_budget=32 * MiB)
    server = StreamServer(
        sim, node, server_params,
        classifier=CoarseBitmapClassifier(server_params,
                                          node.capacity_bytes,
                                          granularity=64 * KiB))
    done = []

    def client(sim):
        offset = 0
        for _ in range(64):
            yield server.submit(read(offset))
            offset += 64 * KiB
        done.append(True)

    process = sim.process(client(sim))
    sim.run_until_event(process, limit=60.0)
    assert done == [True]
    assert server.stats.counter("staged_hits").count > 30
