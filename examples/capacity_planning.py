#!/usr/bin/env python3
"""Capacity planning: choosing D, R, N, M for a storage node.

Given a node (disks + host memory) and an expected stream population,
sweep the server's parameter space and report throughput, worst-stream
latency, and the memory each configuration actually pins. Shows the
paper's Section 5.4 trade-off live: a small dispatch set with long
residencies matches huge-memory configurations at a fraction of M.

Run:  python examples/capacity_planning.py
"""

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB, format_size
from repro.workload import ClientFleet, uniform_streams

NUM_STREAMS = 60
REQUEST_SIZE = 64 * KiB
DURATION = 6.0

#: Candidate configurations: (label, ServerParams).
CANDIDATES = [
    ("all dispatched, R=512K",
     ServerParams(read_ahead=512 * KiB, dispatch_width=NUM_STREAMS,
                  requests_per_residency=1,
                  memory_budget=NUM_STREAMS * 512 * KiB)),
    ("all dispatched, R=8M",
     ServerParams(read_ahead=8 * MiB, dispatch_width=NUM_STREAMS,
                  requests_per_residency=1,
                  memory_budget=NUM_STREAMS * 8 * MiB)),
    ("D=4, N=32, R=1M",
     ServerParams(read_ahead=1 * MiB, dispatch_width=4,
                  requests_per_residency=32, memory_budget=256 * MiB)),
    ("D=1, N=128, R=512K",
     ServerParams(read_ahead=512 * KiB, dispatch_width=1,
                  requests_per_residency=128, memory_budget=128 * MiB)),
    ("autotuned",
     ServerParams.autotune(num_disks=1, memory_bytes=1 * GiB)),
]


def evaluate(params: ServerParams):
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD, seed=3))
    server = StreamServer(sim, node, params)
    specs = uniform_streams(NUM_STREAMS, node.disk_ids,
                            node.capacity_bytes,
                            request_size=REQUEST_SIZE)
    report = ClientFleet(sim, server, specs).run(
        duration=DURATION, warmup=1.5, settle_requests=5)
    return report, server.buffered.peak_in_use


def main() -> None:
    print(f"Planning for {NUM_STREAMS} streams on one WD800JD "
          f"(max ~55-60 MB/s)\n")
    print(f"{'configuration':26s} {'MB/s':>7} {'mean lat':>9} "
          f"{'M budget':>9} {'M peak':>8}")
    for label, params in CANDIDATES:
        report, peak = evaluate(params)
        print(f"{label:26s} {report.throughput_mb:>7.1f} "
              f"{report.mean_latency * 1e3:>7.1f}ms "
              f"{format_size(params.memory_budget):>9} "
              f"{format_size(peak):>8}")
    print("\nReading the table: the 'D=1, N=128' row shows the paper's "
          "point —\nthroughput comparable to 'all dispatched, R=8M' "
          "while pinning a fraction\nof the memory (compare 'M peak').")


if __name__ == "__main__":
    main()
