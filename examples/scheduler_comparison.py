#!/usr/bin/env python3
"""OS I/O scheduler shoot-out (the Figure 2 stack, interactively sized).

Runs 4 KB readers through the page cache and each Linux-style scheduler
(noop / deadline / anticipatory / CFQ) over one disk, printing aggregate
throughput and mean read latency per scheduler and stream count —
including deadline, which the paper's figure omits.

Run:  python examples/scheduler_comparison.py
"""

from repro.disk import DISKSIM_GENERIC, DiskDrive, DriveConfig
from repro.experiments.fig02_schedulers import client_turnaround
from repro.host import BlockLayer, BufferCache, make_scheduler
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB
from repro.workload import run_xdd

SCHEDULERS = ["noop", "deadline", "anticipatory", "cfq"]
STREAM_COUNTS = [1, 8, 32, 128]
DURATION = 3.0


def run(scheduler_name: str, num_streams: int):
    sim = Simulator()
    drive = DiskDrive(sim, DISKSIM_GENERIC,
                      config=DriveConfig(seed=num_streams))
    layer = BlockLayer(sim, drive, make_scheduler(scheduler_name))
    cache = BufferCache(sim, layer, capacity_bytes=256 * MiB)
    return run_xdd(sim, cache, num_streams=num_streams,
                   block_size=4 * KiB, per_stream_bytes=4 * GiB,
                   duration=DURATION,
                   think_time=client_turnaround(num_streams),
                   settle_blocks=96)


def main() -> None:
    print("4K sequential readers through the buffer cache, one disk\n")
    header = f"{'streams':>8}" + "".join(
        f"{name:>15}" for name in SCHEDULERS)
    print(header + "      (MB/s | mean ms)")
    for num_streams in STREAM_COUNTS:
        cells = []
        for scheduler_name in SCHEDULERS:
            report = run(scheduler_name, num_streams)
            cells.append(f"{report.throughput_mb:6.1f}|"
                         f"{report.mean_latency * 1e3:5.1f}")
        print(f"{num_streams:>8}" + "".join(f"{c:>15}" for c in cells))
    print("\nAnticipatory and CFQ batch each stream's readahead windows "
          "and dominate\nuntil per-process turnaround outgrows their idle "
          "windows at high stream counts.")


if __name__ == "__main__":
    main()
