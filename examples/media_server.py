#!/usr/bin/env python3
"""Media server scenario: how many video subscribers fit on 8 disks?

The paper's motivating workload: a video-on-demand node streaming rich
media. Each subscriber pulls a constant-bit-rate stream (think time
between requests models the player's buffer drain). We sweep subscriber
counts on the paper's 8-disk testbed and report, for direct access and
for the stream-aware server, whether the node sustains the full bit rate
for *every* subscriber (the slowest stream matters, not the average).

Run:  python examples/media_server.py
"""

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.node import build_node, medium_topology
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet, StreamSpec

BITRATE = 1.0 * MiB          # 1 MB/s per subscriber (~8 Mbit HD)
REQUEST_SIZE = 256 * KiB     # player fetch granularity
DURATION = 8.0
NUM_DISKS = 8


def subscriber_specs(node, subscribers: int):
    """Spread subscribers over disks; think time enforces the bit rate."""
    think = REQUEST_SIZE / BITRATE  # seconds between fetches at rate
    per_disk = -(-subscribers // NUM_DISKS)
    spacing = node.capacity_bytes // max(per_disk, 1)
    spacing -= spacing % REQUEST_SIZE
    specs = []
    for subscriber in range(subscribers):
        disk = node.disk_ids[subscriber % NUM_DISKS]
        index = subscriber // NUM_DISKS
        specs.append(StreamSpec(
            stream_id=subscriber, disk_id=disk,
            start_offset=index * spacing,
            request_size=REQUEST_SIZE, think_time=think))
    return specs


def sustained_fraction(report, subscribers: int) -> float:
    """Fraction of the target bit rate the *slowest* subscriber got."""
    target_bytes = BITRATE * report.elapsed
    return min(report.per_stream_bytes) / target_bytes


def run(subscribers: int, use_server: bool):
    sim = Simulator()
    node = build_node(sim, medium_topology(disk_spec=WD800JD, seed=7))
    if use_server:
        # CBR viewers are latency-sensitive: dispatch *every* stream with
        # a moderate read-ahead (Figure 10's configuration) rather than
        # the long-residency throughput tuning — each subscriber keeps a
        # 2 MB staging buffer that refills as the player drains it.
        params = ServerParams(read_ahead=2 * MiB,
                              dispatch_width=subscribers,
                              requests_per_residency=1,
                              memory_budget=subscribers * 2 * MiB)
        device = StreamServer(sim, node, params)
    else:
        device = node
    specs = subscriber_specs(node, subscribers)
    report = ClientFleet(sim, device, specs).run(
        duration=DURATION, warmup=2.0, settle_requests=3)
    return report, sustained_fraction(report, subscribers)


def main() -> None:
    print(f"Video-on-demand on {NUM_DISKS} disks: {BITRATE / MiB:.0f} MB/s "
          f"per subscriber, {REQUEST_SIZE // KiB}K fetches\n")
    print(f"{'subscribers':>11}  {'direct MB/s':>11} {'worst%':>7}   "
          f"{'server MB/s':>11} {'worst%':>7}")
    for subscribers in (80, 160, 320, 480):
        direct, direct_frac = run(subscribers, use_server=False)
        served, served_frac = run(subscribers, use_server=True)
        print(f"{subscribers:>11}  {direct.throughput_mb:>11.1f} "
              f"{direct_frac:>6.0%}   {served.throughput_mb:>11.1f} "
              f"{served_frac:>6.0%}")
    print("\n'worst%': slowest subscriber's delivered fraction of the "
          "target bit rate\n(a healthy deployment needs ~100% — averages "
          "hide starving viewers).")


if __name__ == "__main__":
    main()
