#!/usr/bin/env python3
"""Quickstart: the stream server vs direct disk access.

Builds a single-disk storage node (the paper's WD800JD), runs 50
concurrent sequential readers against it twice — once directly, once
through the stream-aware server — and prints the throughput and latency
of both. Expect the server to improve aggregate throughput severalfold.

Run:  python examples/quickstart.py
"""

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet, uniform_streams

NUM_STREAMS = 50
REQUEST_SIZE = 64 * KiB
DURATION = 10.0  # simulated seconds


def run(use_server: bool) -> None:
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD, seed=42))

    if use_server:
        params = ServerParams(
            read_ahead=4 * MiB,          # R: coalesced request size
            dispatch_width=NUM_STREAMS,  # D: streams fetching at once
            requests_per_residency=1,    # N: issues per residency
            memory_budget=NUM_STREAMS * 4 * MiB,  # M >= D*R*N
        )
        device = StreamServer(sim, node, params)
        label = "stream server (D=S, R=4M)"
    else:
        device = node
        label = "direct access"

    specs = uniform_streams(NUM_STREAMS, node.disk_ids,
                            node.capacity_bytes,
                            request_size=REQUEST_SIZE)
    fleet = ClientFleet(sim, device, specs)
    report = fleet.run(duration=DURATION, warmup=2.0, settle_requests=5)
    print(f"{label:34s} {report.throughput_mb:7.1f} MB/s   "
          f"mean latency {report.mean_latency * 1e3:8.2f} ms")


def main() -> None:
    print(f"{NUM_STREAMS} sequential streams, {REQUEST_SIZE // KiB}K "
          f"requests, one WD800JD, {DURATION:.0f}s simulated\n")
    run(use_server=False)
    run(use_server=True)


if __name__ == "__main__":
    main()
