#!/usr/bin/env python3
"""Trace capture and replay, over JBOD and RAID-0.

Demonstrates the workload-portability path: synthesise a trace from a
parametric fleet, save/load it as CSV, then replay the *same* trace
against two back-ends — the plain node and a striped volume — with and
without the stream server. One trace, four configurations, comparable
numbers.

Run:  python examples/trace_replay.py
"""

import io

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.node import StripedVolume, build_node, medium_topology
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import (
    StreamSpec,
    TraceReplayer,
    load_trace,
    record_fleet_trace,
    save_trace,
)

NUM_STREAMS = 160          # 20 per disk: past the drive cache's segments
REQUESTS_PER_STREAM = 32
REQUEST_SIZE = 64 * KiB


def make_trace() -> str:
    """Synthesise the workload trace and round-trip it through CSV."""
    per_disk = NUM_STREAMS // 8
    stride = 80 * 10**9 // per_disk
    stride -= stride % REQUEST_SIZE
    specs = [StreamSpec(stream_id=s, disk_id=s % 8,
                        start_offset=(s // 8) * stride,
                        request_size=REQUEST_SIZE)
             for s in range(NUM_STREAMS)]
    entries = record_fleet_trace(specs, REQUESTS_PER_STREAM)
    buffer = io.StringIO()
    save_trace(entries, buffer)
    return buffer.getvalue()


def replay(trace_text: str, striped: bool, with_server: bool) -> float:
    sim = Simulator()
    node = build_node(sim, medium_topology(disk_spec=WD800JD, seed=13))
    entries = load_trace(io.StringIO(trace_text))
    if striped:
        volume = StripedVolume(sim, node, node.disk_ids,
                               chunk_bytes=256 * KiB)
        # Re-target the per-disk trace onto the volume's flat space:
        # each source disk gets its own virtual region, so streams stay
        # disjoint and sequential.
        region = volume.capacity_bytes // 8
        region -= region % REQUEST_SIZE
        entries = [e.__class__(time=e.time, kind=e.kind, disk_id=0,
                               offset=e.disk_id * region + e.offset,
                               size=e.size, stream_id=e.stream_id)
                   for e in entries]
        device = volume
    else:
        device = node
    if with_server:
        device = StreamServer(sim, device, ServerParams(
            read_ahead=2 * MiB, dispatch_width=NUM_STREAMS,
            memory_budget=NUM_STREAMS * 2 * MiB))
    replayer = TraceReplayer(sim, device, entries, open_loop=False)
    done = replayer.start()
    sim.run_until_event(done, limit=600.0)
    return replayer.throughput(sim.now) / MiB


def main() -> None:
    trace_text = make_trace()
    total_mb = NUM_STREAMS * REQUESTS_PER_STREAM * REQUEST_SIZE // MiB
    print(f"Trace: {NUM_STREAMS} streams x {REQUESTS_PER_STREAM} x "
          f"{REQUEST_SIZE // KiB}K = {total_mb} MB, "
          f"{len(trace_text.splitlines())} records\n")
    print(f"{'backend':24s} {'plain MB/s':>11} {'+server MB/s':>13}")
    for striped, label in ((False, "JBOD (8 disks)"),
                           (True, "RAID-0 (8 disks)")):
        plain = replay(trace_text, striped, with_server=False)
        served = replay(trace_text, striped, with_server=True)
        print(f"{label:24s} {plain:>11.1f} {served:>13.1f}")
    print("\nThe same portable CSV trace drives every configuration; the "
          "server's\ncoalescing wins on both backends.")


if __name__ == "__main__":
    main()
