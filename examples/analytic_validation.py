#!/usr/bin/env python3
"""Cross-validating the simulator against the closed-form model.

The paper's throughput story has a two-line analytic core: an
interleaved stream pays one seek plus half a rotation per coalesced
request, so throughput is ``R / (seek(S) + T_rev/2 + R/media)``. This
example prints the closed form next to full-stack simulation for a grid
of (streams, read-ahead) points, with an ASCII chart of the headline
sweep — if the two ever diverge badly, something in the five-layer stack
regressed.

Run:  python examples/analytic_validation.py
"""

from repro.analysis.analytic import AnalyticDiskModel
from repro.analysis.charts import bar_chart
from repro.analysis.metrics import Series
from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB, format_size
from repro.workload import ClientFleet, uniform_streams

GRID = [
    (30, 512 * KiB),
    (30, 2 * MiB),
    (30, 8 * MiB),
    (100, 512 * KiB),
    (100, 2 * MiB),
    (100, 8 * MiB),
]


def simulate(num_streams: int, read_ahead: int) -> float:
    sim = Simulator()
    node = build_node(sim, base_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=read_ahead, dispatch_width=num_streams,
        requests_per_residency=1,
        memory_budget=num_streams * read_ahead))
    specs = uniform_streams(num_streams, node.disk_ids,
                            node.capacity_bytes, request_size=64 * KiB)
    report = ClientFleet(sim, server, specs).run(
        duration=6.0, warmup=1.0, settle_requests=5)
    return report.throughput_mb


def main() -> None:
    model = AnalyticDiskModel(WD800JD)
    print("Closed form: R / (seek(capacity/S) + T_rev/2 + R/media)\n")
    print(f"{'S':>4} {'R':>6} {'analytic':>9} {'simulated':>10} "
          f"{'ratio':>6}")
    chart = Series("simulated MB/s at S=100")
    for num_streams, read_ahead in GRID:
        predicted = model.interleaved_throughput(
            num_streams, read_ahead).throughput_mb
        simulated = simulate(num_streams, read_ahead)
        print(f"{num_streams:>4} {format_size(read_ahead):>6} "
              f"{predicted:>9.1f} {simulated:>10.1f} "
              f"{simulated / predicted:>6.2f}")
        if num_streams == 100:
            chart.add(format_size(read_ahead), simulated)
    print()
    print(bar_chart(chart, unit=" MB/s"))
    needed = model.read_ahead_for_utilisation(100, 0.85)
    print(f"\nAnalytic inversion: reaching 85% utilisation at 100 "
          f"streams needs R = {format_size(needed)} — the paper's "
          f"single-digit-MB read-ahead finding.")


if __name__ == "__main__":
    main()
