"""Ablation bench: dynamic region bitmaps vs one static coarse bitmap.

The paper's Section 4.1 design choice, quantified: the static design
either pins orders of magnitude more memory (fine granularity) or
detects streams late (coarse granularity); the dynamic design gets both
cheap memory and fast detection.
"""

from repro.core import CoarseBitmapClassifier, SequentialClassifier, \
    ServerParams
from repro.io import IOKind, IORequest
from repro.units import GiB, KiB, MiB

CAPACITY = 80 * 10**9
NUM_STREAMS = 200


def _feed_streams(classifier):
    """Feed 200 interleaved sequential streams; return stats."""
    positions = [s * (CAPACITY // NUM_STREAMS) for s in range(NUM_STREAMS)]
    positions = [p - p % (64 * KiB) for p in positions]
    detect_after = {}
    requests_fed = {s: 0 for s in range(NUM_STREAMS)}
    for round_number in range(8):
        for stream in range(NUM_STREAMS):
            request = IORequest(kind=IOKind.READ, disk_id=0,
                                offset=positions[stream], size=64 * KiB,
                                stream_id=stream)
            positions[stream] += 64 * KiB
            requests_fed[stream] += 1
            if stream not in detect_after and classifier.route(
                    request, now=float(round_number)) is not None:
                detect_after[stream] = requests_fed[stream]
    mean_detect = (sum(detect_after.values()) / len(detect_after)
                   if detect_after else float("inf"))
    return len(detect_after), mean_detect


def test_ablation_classifier_designs(benchmark):
    def compare():
        params = ServerParams()
        dynamic = SequentialClassifier(params)
        fine_static = CoarseBitmapClassifier(params, CAPACITY,
                                             granularity=64 * KiB)
        coarse_static = CoarseBitmapClassifier(params, CAPACITY,
                                               granularity=8 * MiB)
        return {
            "dynamic": (_feed_streams(dynamic),
                        dynamic.bitmaps.memory_bytes()),
            "fine": (_feed_streams(fine_static),
                     fine_static.memory_bytes()),
            "coarse": (_feed_streams(coarse_static),
                       coarse_static.memory_bytes()),
        }

    results = benchmark.pedantic(compare, iterations=1, rounds=1)
    (dyn_detected, dyn_latency), dyn_memory = results["dynamic"]
    (fine_detected, fine_latency), fine_memory = results["fine"]
    (coarse_detected, _), coarse_memory = results["coarse"]
    # Both precise designs detect everything, equally fast.
    assert dyn_detected == NUM_STREAMS
    assert fine_detected == NUM_STREAMS
    assert dyn_latency <= fine_latency + 1
    # ...but the static fine bitmap pins >=50x the memory.
    assert fine_memory > 50 * dyn_memory
    # The coarse static bitmap saves memory but misses detections within
    # this (8 requests/stream = 512K/stream) horizon: 8M granules need
    # ~24 MB of sequential data for a 3-granule run.
    assert coarse_memory < fine_memory / 50
    assert coarse_detected < NUM_STREAMS // 2
