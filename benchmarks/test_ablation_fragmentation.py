"""Ablation bench: filesystem fragmentation vs stream detection.

Shape: contiguous files stream near disk speed with a high staged-hit
fraction; sub-read-ahead fragmentation collapses both (the extent
boundaries break device-level sequentiality and poison the coalesced
fetches).
"""

from repro.experiments.ext_fragmentation import run
from conftest import run_once


def test_ablation_fragmentation(benchmark, scale):
    result = run_once(benchmark, run, scale)

    throughput = result.get("throughput (MB/s)")
    staged = result.get("staged-hit fraction")
    # Contiguous files: the server works (fast, mostly from memory).
    assert throughput.y_at("contiguous") > 25
    assert staged.y_at("contiguous") > 0.85
    # Fragmentation at/below the read-ahead size erodes both badly.
    assert throughput.y_at("contiguous") > \
        4.0 * throughput.y_at("512K")
    assert staged.y_at("512K") < staged.y_at("contiguous")
    # Coarse fragmentation (extents >> R) is nearly harmless.
    assert throughput.y_at("8M") > 0.8 * throughput.y_at("contiguous")
