"""Bench: Figure 12 — 8-disk setup with D = S.

Shape: read-ahead orders the curves, none reach the ~450 MB/s ceiling,
and the no-read-ahead baseline collapses once streams exceed the disk
cache's segments.
"""

from repro.experiments.fig12_multidisk import run
from conftest import run_once

CEILING_MB = 450.0


def test_fig12_eight_disks(benchmark, scale):
    result = run_once(benchmark, run, scale)

    none = result.get("No read-ahead")
    small = result.get("R = 512K")
    big = result.get("R = 2M")
    # Ordering by read-ahead at every stream count.
    for streams in (30, 60, 100):
        assert big.y_at(streams) > small.y_at(streams)
        assert small.y_at(streams) > 3.0 * none.y_at(streams)
    # Everything stays below the hardware ceiling.
    for series in result.series:
        assert max(series.ys) < CEILING_MB
    # The baseline collapse past the drive cache's segment count.
    assert none.y_at(10) > 3.0 * none.y_at(30)
