"""Bench: Figure 4 — request size vs throughput with no prefetch.

Shape: throughput grows with request size for every stream count; a
single stream vastly outperforms many streams (each multi-stream request
pays a seek); multi-stream curves cluster together.
"""

from repro.analysis import monotone_increasing
from repro.experiments.fig04_reqsize import run
from conftest import run_once


def test_fig04_request_size(benchmark, scale):
    result = run_once(benchmark, run, scale)

    single = result.get("1 streams")
    hundred = result.get("100 streams")
    # Larger requests amortise mechanics for everyone.
    for series in result.series:
        assert monotone_increasing(series.ys, tolerance=0.2)
    # The collapse at 64K: one stream >> one hundred.
    assert single.y_at("64K") > 3.0 * hundred.y_at("64K")
    # Multi-stream curves cluster (10 vs 100 within ~3x at 64K+).
    ten = result.get("10 streams")
    assert hundred.y_at("256K") < 3.0 * ten.y_at("256K")
    assert ten.y_at("256K") < 3.0 * hundred.y_at("256K")
