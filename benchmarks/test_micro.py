"""Micro-benchmarks: kernel event rate, cache ops, classifier routing.

These are conventional pytest-benchmark timings (many rounds) for the
hot paths every experiment leans on; regressions here inflate every
figure's wall-clock cost.
"""

from repro.core import SequentialClassifier, ServerParams
from repro.disk.cache import SegmentedCache
from repro.io import IOKind, IORequest
from repro.sim import Simulator
from repro.units import KiB


def test_micro_kernel_timeout_churn(benchmark):
    """Schedule-and-run 10k timeout events."""
    def churn():
        sim = Simulator()

        def ticker(sim):
            for _ in range(10_000):
                yield sim.timeout(0.001)

        sim.process(ticker(sim))
        sim.run()
        return sim.now

    result = benchmark(churn)
    assert result > 9.9


def test_micro_segmented_cache_lookup(benchmark):
    """Hit-path lookups against a populated 128-segment cache."""
    cache = SegmentedCache(num_segments=128, segment_sectors=512)
    for index in range(128):
        segment = cache.allocate(index * 10_000)
        cache.fill(segment, 512)

    def lookups():
        hits = 0
        for index in range(128):
            for probe in range(4):
                hits += cache.lookup(index * 10_000 + probe * 100, 64) == 64
        return hits

    assert benchmark(lookups) == 512


def test_micro_cache_allocate_evict(benchmark):
    """Allocation/eviction churn (the thrash path)."""
    cache = SegmentedCache(num_segments=32, segment_sectors=512)

    def churn():
        for index in range(1000):
            segment = cache.allocate(index * 4096)
            cache.fill(segment, 512)
        return cache.stats.evictions

    assert benchmark(churn) > 0


def test_micro_classifier_routing(benchmark):
    """Hot-path routing of an established stream."""
    classifier = SequentialClassifier(ServerParams())

    def route_run():
        offset = 0
        routed = 0
        for i in range(500):
            request = IORequest(kind=IOKind.READ, disk_id=0,
                                offset=offset, size=64 * KiB)
            if classifier.route(request, now=float(i)) is not None:
                routed += 1
            offset += 64 * KiB
        return routed

    # After detection (2 misses), everything routes.
    assert benchmark(route_run) >= 400
