"""Bench: Figure 1 — 60-disk throughput collapse.

Shape: aggregate throughput rises with request size, and collapses by
>=2x as total streams grow from 60 to 500.
"""

from repro.analysis import monotone_increasing
from repro.experiments.fig01_collapse import run
from conftest import run_once


def test_fig01_collapse(benchmark, scale):
    result = run_once(benchmark, run, scale)

    sixty = result.get("60 streams")
    five_hundred = result.get("500 streams")
    # Larger requests help at low stream counts.
    assert monotone_increasing(sixty.ys, tolerance=0.25)
    # The collapse: 60 streams vastly outperform 500 at large requests.
    assert sixty.y_at("256K") > 2.0 * five_hundred.y_at("256K")
    # Every curve is positive and below any physical ceiling.
    for series in result.series:
        assert all(0 < y < 60 * 65 for y in series.ys)
