"""Ablation bench: JBOD vs RAID-0 under two workload shapes.

The classic trade-off, on the 8-disk node: striping multiplies a single
stream's bandwidth (every spindle serves its chunks), while for many
concurrent streams JBOD isolation avoids the stripe's
every-disk-seeks-for-every-request behaviour.
"""

from repro.io import IOKind, IORequest
from repro.node import StripedVolume, build_node, medium_topology
from repro.disk import WD800JD
from repro.disk.mechanics import RotationMode
from repro.sim import Simulator
from repro.units import KiB, MiB


def _node(sim):
    return build_node(sim, medium_topology(
        disk_spec=WD800JD, rotation_mode=RotationMode.EXPECTED))


def _single_big_stream(striped: bool) -> float:
    """One reader issuing 8 MB requests; returns MB/s."""
    sim = Simulator()
    node = _node(sim)
    device = StripedVolume(sim, node, node.disk_ids,
                           chunk_bytes=1 * MiB) if striped else node
    total = 256 * MiB
    done = {}

    def client(sim):
        offset = 0
        while offset < total:
            yield device.submit(IORequest(kind=IOKind.READ, disk_id=0,
                                          offset=offset, size=8 * MiB))
            offset += 8 * MiB
        done["t"] = sim.now

    sim.process(client(sim))
    sim.run()
    return total / done["t"] / MiB


def _many_small_streams(striped: bool) -> float:
    """64 concurrent 64K readers; returns MB/s over a fixed window."""
    sim = Simulator()
    node = _node(sim)
    device = StripedVolume(sim, node, node.disk_ids,
                           chunk_bytes=256 * KiB) if striped else node
    num_streams = 64
    capacity = device.capacity_bytes
    spacing = capacity // num_streams
    spacing -= spacing % (64 * KiB)
    progress = [0]

    def client(sim, base, disk):
        offset = base
        while True:
            yield device.submit(IORequest(kind=IOKind.READ,
                                          disk_id=disk, offset=offset,
                                          size=64 * KiB))
            progress[0] += 64 * KiB
            offset += 64 * KiB

    for stream in range(num_streams):
        disk = 0 if striped else node.disk_ids[stream % 8]
        base = (stream * spacing) if striped else \
            ((stream // 8) * (node.capacity_bytes // 8)
             // (64 * KiB) * (64 * KiB))
        sim.process(client(sim, base, disk))
    sim.run(until=3.0)
    return progress[0] / 3.0 / MiB


def test_ablation_striping_tradeoff(benchmark):
    def all_four():
        return (_single_big_stream(False), _single_big_stream(True),
                _many_small_streams(False), _many_small_streams(True))

    jbod_one, raid_one, jbod_many, raid_many = benchmark.pedantic(
        all_four, iterations=1, rounds=1)
    # One big stream: RAID-0 multiplies bandwidth.
    assert raid_one > 2.5 * jbod_one
    # Many small streams: JBOD's isolation wins.
    assert jbod_many > 1.5 * raid_many
