"""Bench: Figure 10 — the headline result.

Shape: with R = 8M the stream server holds the disk near its single-
stream maximum for 10-100 streams (insensitivity), improving on the
no-read-ahead baseline by >=4x at 100 streams; throughput orders by R.
"""

from repro.experiments.fig10_readahead import run
from conftest import run_once


def test_fig10_server_readahead(benchmark, scale):
    result = run_once(benchmark, run, scale)

    big = next(s for s in result.series if s.label.startswith("R = 8M"))
    none = result.get("No read-ahead")
    # Insensitivity: R=8M stays within a tight band across stream counts.
    assert min(big.ys) > 0.6 * max(big.ys)
    assert min(big.ys) > 30  # near the ~55 MB/s disk maximum
    # The headline >=4x improvement at 100 streams.
    assert big.y_at(100) > 4.0 * none.y_at(100)
    # Monotone ordering in R at 100 streams.
    by_r = [next(s for s in result.series if s.label.startswith(prefix))
            for prefix in ("R = 8M", "R = 2M", "R = 1M", "R = 512K",
                           "R = 128K")]
    values = [series.y_at(100) for series in by_r]
    assert values == sorted(values, reverse=True)
