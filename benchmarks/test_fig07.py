"""Bench: Figure 7 — read-ahead under a fixed 8 MB cache.

Shape: bigger segments help while segments outnumber streams, and
collapse once streams exceed the segment count (prefetched data evicted
before use) — the diagonal cliff across the configurations.
"""

from repro.experiments.fig07_readahead_fixed_cache import run
from conftest import run_once


def test_fig07_fixed_cache_readahead(benchmark, scale):
    result = run_once(benchmark, run, scale)

    ten = result.get("10 streams")
    hundred = result.get("100 streams")
    # 10 streams fit in 16 segments: 16x512K beats tiny segments...
    assert ten.y_at("16x512K") > 1.5 * ten.y_at("128x64K")
    # ...but exceed 8 segments: the 8x1M configuration thrashes.
    assert ten.y_at("16x512K") > 2.5 * ten.y_at("8x1M")
    # 100 streams > 8 segments at 8x1M: thrash, big segments lose.
    assert hundred.y_at("128x64K") > 2.0 * hundred.y_at("8x1M")
    # The cliff moves with stream count: 50 streams still fit in 64
    # segments but not in 16.
    fifty = result.get("50 streams")
    assert fifty.y_at("64x128K") > 2.0 * fifty.y_at("16x512K")
    # One stream never thrashes: flat and high everywhere.
    one = result.get("1 streams")
    assert min(one.ys) > 0.7 * max(one.ys)
