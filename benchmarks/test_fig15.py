"""Bench: Figure 15 — average stream response time.

Shape: response time is driven primarily by the number of streams
(orders of magnitude between S=1 and S=100); at a fixed stream count,
larger read-ahead does not hurt — and generally improves — the mean.
"""

from repro.experiments.fig15_latency import run
from conftest import run_once


def test_fig15_response_time(benchmark, scale):
    result = run_once(benchmark, run, scale)

    def series(streams, memory_mb):
        return result.get(f"S = {streams} (M = {memory_mb}MBytes)")

    # Stream count dominates: each decade of streams costs >=5x latency.
    for memory in (64, 256):
        assert series(10, memory).y_at("1M") > \
            5.0 * series(1, memory).y_at("1M")
        assert series(100, memory).y_at("1M") > \
            5.0 * series(10, memory).y_at("1M")
    # At S=100, big read-ahead improves the mean response time.
    s100 = series(100, 256)
    assert s100.y_at("8M") < s100.y_at("256K")
    # A single stream stays near disk latency regardless of read-ahead.
    assert max(series(1, 256).ys) < 10.0  # ms
