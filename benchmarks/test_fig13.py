"""Bench: Figure 13 — small dispatch set on 8 disks.

Shape: D = #disks with N = 128 beats Figure 12's D = S at every stream
count and lands in the vicinity of 80% of the ~450 MB/s ceiling.
"""

from repro.experiments.fig13_dispatch_staging import run
from conftest import run_once

CEILING_MB = 450.0


def test_fig13_dispatch_vs_staging(benchmark, scale):
    result = run_once(benchmark, run, scale)

    small_d = result.get("R = 512K, D = #disks, N = 128")
    d_equals_s = result.get("R = 512K, from Figure 12 (D = S)")
    # The small dispatch set wins at every stream count.
    for streams in (10, 30, 60, 100):
        assert small_d.y_at(streams) > 1.2 * d_equals_s.y_at(streams)
    # And reaches a healthy fraction of the hardware ceiling.
    assert max(small_d.ys) > 0.55 * CEILING_MB
    assert max(small_d.ys) < CEILING_MB
