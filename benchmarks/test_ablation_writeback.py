"""Ablation bench: write coalescing (the extension) on vs off.

Thirty interleaved sequential write streams on one disk: pass-through
writes pay a seek per 64K; the coalescer's 2 MB flushes amortise it.
"""

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.io import IOKind, IORequest
from repro.units import KiB, MiB

NUM_STREAMS = 30
PER_STREAM = 2 * MiB


def _write_run(coalesce: bool) -> float:
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD, seed=5))
    server = StreamServer(sim, node, ServerParams(
        coalesce_writes=coalesce, write_coalesce_bytes=2 * MiB,
        write_memory_budget=256 * MiB))
    spacing = node.capacity_bytes // NUM_STREAMS
    spacing -= spacing % (64 * KiB)

    def writer(sim, stream):
        offset = stream * spacing
        for _ in range(PER_STREAM // (64 * KiB)):
            yield server.submit(IORequest(
                kind=IOKind.WRITE, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=stream))
            offset += 64 * KiB

    processes = [sim.process(writer(sim, s)) for s in range(NUM_STREAMS)]
    sim.run_until_event(sim.all_of(processes), limit=600.0)
    if coalesce:
        sim.run_until_event(server.write_coalescer.flush_all(),
                            limit=600.0)
    return NUM_STREAMS * PER_STREAM / sim.now / MiB


def test_ablation_write_coalescing(benchmark):
    def both():
        return _write_run(False), _write_run(True)

    passthrough, coalesced = benchmark.pedantic(both, iterations=1,
                                                rounds=1)
    # Coalescing must win by a large factor on interleaved writes.
    assert coalesced > 3.0 * passthrough
    assert passthrough > 0.5  # sanity: pass-through still finishes
