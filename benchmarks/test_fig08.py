"""Bench: Figure 8 — controller-level prefetching (128 MB cache).

Shape: moderate prefetch lifts multi-stream throughput several-fold; at
4 MB prefetch with 60-100 streams the 32-extent cache thrashes and
throughput collapses towards zero.
"""

from repro.experiments.fig08_controller_prefetch import run
from conftest import run_once


def test_fig08_controller_prefetch(benchmark, scale):
    result = run_once(benchmark, run, scale)

    ten = result.get("10 streams")
    sixty = result.get("60 streams")
    hundred = result.get("100 streams")
    # Controller prefetch rescues 10 streams (paper: ~10 -> ~40 MB/s).
    assert ten.y_at("2M") > 3.0 * ten.y_at("64K")
    # The cliff: 4 MB prefetch with 60+ streams collapses towards zero.
    assert sixty.y_at("4M") < 3.0
    assert hundred.y_at("4M") < 3.0
    assert sixty.y_at("512K") > 5.0 * sixty.y_at("4M")
    # One stream is insensitive to controller prefetch size.
    one = result.get("1 streams")
    assert min(one.ys) > 0.7 * max(one.ys)
