"""Bench: Figure 11 — memory size vs throughput.

Shape: read-ahead size matters more than dispatch width — R=8M with
memory for one or two dispatched streams beats R=256K with every stream
dispatched; a single stream is insensitive to everything.
"""

from repro.experiments.fig11_memory import run
from conftest import run_once


def test_fig11_memory_size(benchmark, scale):
    result = run_once(benchmark, run, scale)

    s100_big_r = result.get("S = 100 (RA = 8M)")
    s100_small_r = result.get("S = 100 (RA = 256K)")
    # The paper's key point: R=8M at minimal memory (D=1..2) beats
    # R=256K with all 100 streams dispatched at any memory size.
    assert s100_big_r.y_at(8) > 1.5 * max(s100_small_r.ys)
    # A single stream needs neither memory nor read-ahead.
    one = result.get("S = 1 (RA = 256K)")
    assert min(one.ys) > 0.8 * max(one.ys)
    assert min(one.ys) > 40
    # Memory size itself has only a mild effect at fixed (S, R).
    for series in result.series:
        if len(series.ys) >= 2:
            assert min(series.ys) > 0.5 * max(series.ys)
