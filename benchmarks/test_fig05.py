"""Bench: Figure 5 — xdd on a single (modelled) real disk.

Shape: same collapse as Figure 4, but small requests fare better at low
stream counts because the real disk's segment size is fixed (the drive
still prefetches a full segment).
"""

from repro.experiments.fig04_reqsize import run as run_fig04
from repro.experiments.fig05_xdd_single import run
from conftest import run_once


def test_fig05_xdd_single_disk(benchmark, scale):
    result = run_once(benchmark, run, scale)

    single = result.get("1 streams")
    ten = result.get("10 streams")
    thirty = result.get("30 streams")
    # Single stream saturates the disk for 64K+ requests.
    assert single.y_at("64K") > 45
    # Collapse with stream count at small requests.
    assert ten.y_at("8K") > 3.0 * thirty.y_at("8K")
    # The paper's observation vs Figure 4: fixed segments make small
    # requests relatively fast at low stream counts.
    fig04 = run_fig04(scale)
    assert single.y_at("8K") > fig04.get("1 streams").y_at("8K") * 0.9
    assert ten.y_at("8K") > fig04.get("10 streams").y_at("8K") * 2.0
