"""Shared configuration for the benchmark harness.

Each ``benchmarks/test_figNN.py`` regenerates one paper figure at a
reduced scale and asserts the figure's *shape* (orderings, collapse
factors, crossovers — see DESIGN.md §3). Absolute MB/s are not asserted:
the substrate is a simulator, not the authors' testbed.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` (default),
``quick``, or ``full``.
"""

import os

import pytest

from repro.experiments import FULL, QUICK, SMOKE

_SCALES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


@pytest.fixture(scope="session")
def scale():
    """The experiment scale benches run at."""
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r}; choose from {sorted(_SCALES)}")


def run_once(benchmark, runner, scale):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(runner, args=(scale,), iterations=1,
                              rounds=1)
