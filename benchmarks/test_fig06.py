"""Bench: Figure 6 — disk segment-size sweep, 30 streams.

Shape: throughput climbs several-fold as segment size grows from 32K
toward megabyte segments (one seek amortised over a whole segment).
"""

from repro.experiments.fig06_segsize import run
from conftest import run_once


def test_fig06_segment_size(benchmark, scale):
    result = run_once(benchmark, run, scale)

    series = result.get("30 streams")
    smallest = series.y_at("32K")
    best = max(series.ys)
    # The paper reports ~8 -> ~40 MB/s; demand at least a 3x climb.
    assert best > 3.0 * smallest
    # The peak comes from a big-segment configuration.
    peak_x = series.xs[series.ys.index(best)]
    assert peak_x in ("512K", "1M", "2M")
