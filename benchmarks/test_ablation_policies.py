"""Ablation bench: dispatch-set replacement policies.

The paper uses round-robin and sketches an offset-aware alternative
("keep streams that access nearby areas of the disk in the dispatch
set") while noting its benefits are unclear at large request sizes. The
ablation measures both on the same workload: the expected outcome is
parity within noise, confirming the paper's choice of the simpler
policy.
"""

from repro.core import ServerParams, StreamServer
from repro.core.policies import OffsetAwarePolicy, RoundRobinPolicy
from repro.disk.specs import WD800JD
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workload import ClientFleet, uniform_streams


def _throughput(policy, scale):
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD, seed=11))
    params = ServerParams(read_ahead=1 * MiB, dispatch_width=4,
                          requests_per_residency=4,
                          memory_budget=64 * MiB)
    server = StreamServer(sim, node, params, policy=policy)
    specs = uniform_streams(40, node.disk_ids, node.capacity_bytes,
                            request_size=64 * KiB)
    report = ClientFleet(sim, server, specs).run(
        duration=scale.duration, warmup=scale.warmup, settle_requests=5)
    return report.throughput_mb


def test_ablation_replacement_policies(benchmark, scale):
    def both():
        return (_throughput(RoundRobinPolicy(), scale),
                _throughput(OffsetAwarePolicy(), scale))

    round_robin, offset_aware = benchmark.pedantic(both, iterations=1,
                                                   rounds=1)
    # Both policies must deliver healthy throughput; neither should
    # dominate by more than ~2x (the paper: "their benefits are not
    # clear, given that issued requests usually have large sizes").
    assert round_robin > 10
    assert offset_aware > 10
    ratio = offset_aware / round_robin
    assert 0.5 < ratio < 2.0
