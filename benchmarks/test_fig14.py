"""Bench: Figure 14 — single disk, D = 1, N = 128.

Shape: a one-slot dispatch set with long residencies matches the
all-dispatched big-R configurations of Figure 10 while pinning a fraction
of the memory — and stays insensitive to the stream count.
"""

from repro.experiments.fig14_single_small_dispatch import run
from conftest import run_once


def test_fig14_small_dispatch_single_disk(benchmark, scale):
    result = run_once(benchmark, run, scale)

    small_d = result.get("R = 512K, D = 1, N = 128")
    fig10_2m = result.get("R = 2M, from Figure 10")
    # Comparable to the memory-hungry Figure 10 configuration.
    for streams in (30, 60, 100):
        assert small_d.y_at(streams) > 0.6 * fig10_2m.y_at(streams)
    # Insensitive to the number of streams.
    assert min(small_d.ys) > 0.5 * max(small_d.ys)
    # Well above the ~3.5 MB/s no-read-ahead collapse level.
    assert min(small_d.ys) > 15
