"""Bench: Figure 2 — Linux I/O schedulers, one disk, 4K reads.

Shape: all schedulers degrade sharply past ~16-32 streams; anticipatory
leads at moderate stream counts; anticipatory loses ~4x from its plateau
by 256 streams.
"""

from repro.experiments.fig02_schedulers import run
from conftest import run_once


def test_fig02_schedulers(benchmark, scale):
    result = run_once(benchmark, run, scale)

    anticipatory = result.get("anticipatory")
    cfq = result.get("cfq")
    noop = result.get("noop")
    # Anticipation batching dominates FIFO at moderate stream counts.
    for streams in (4, 8, 16, 32):
        assert anticipatory.y_at(streams) > 1.5 * noop.y_at(streams)
        assert cfq.y_at(streams) > 1.2 * noop.y_at(streams)
    # The collapse: anticipatory loses >=3x from its plateau by 256.
    plateau = max(anticipatory.y_at(s) for s in (8, 16, 32))
    assert plateau > 3.0 * anticipatory.y_at(256)
    # CFQ collapses too.
    cfq_plateau = max(cfq.y_at(s) for s in (8, 16, 32))
    assert cfq_plateau > 3.0 * cfq.y_at(256)
