"""Bench: extension — the insensitivity summary (server vs baselines).

Shape: direct access and the anticipatory OS stack collapse with stream
count; both server configurations stay within a band of the single-
stream maximum out to 300 streams.
"""

from repro.experiments.ext_insensitivity import run
from conftest import run_once


def test_ext_insensitivity(benchmark, scale):
    result = run_once(benchmark, run, scale)

    direct = result.get("direct access")
    anticipatory = result.get("anticipatory OS stack")
    big_server = result.get("server D=S R=8M")
    small_server = result.get("server D=1 N=128")
    # Baselines collapse hard by 300 streams.
    assert direct.y_at(1) > 5.0 * direct.y_at(300)
    assert anticipatory.y_at(1) > 3.0 * anticipatory.y_at(300)
    # The server holds a healthy fraction of its single-stream value.
    for server in (big_server, small_server):
        assert server.y_at(300) > 0.5 * server.y_at(1)
        assert server.y_at(300) > 25
    # And dominates both baselines at scale.
    assert big_server.y_at(300) > 4.0 * max(direct.y_at(300),
                                            anticipatory.y_at(300))
