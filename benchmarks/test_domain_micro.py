"""Domain micro-benchmarks: the per-request hot path's ops/sec.

These time the exact workloads ``python -m repro.experiments.bench``
records into ``BENCH_engine.json``'s ``domain`` tier, so
pytest-benchmark's statistics and the committed trajectory file stay
comparable. The domain fast-path PR (last-zone memoized geometry,
tombstoned cache index with a fused coverage walk, precomputed queue
entries, single-pass LOOK) is the work these benches guard.
"""

from repro.experiments.domainbench import (
    DOMAIN_WORKLOADS,
    cache_churn,
    drive_service,
    geometry_lookup,
    ops_per_second,
    server_smoke,
)


def test_domain_micro_geometry_lookup(benchmark):
    """LBA → zone/cylinder mapping, sequential with periodic jumps."""
    assert benchmark(geometry_lookup) == 200_000


def test_domain_micro_cache_churn(benchmark):
    """Segmented-cache thrash: 320 streams over 256 small segments."""
    assert benchmark(cache_churn) == 40_000


def test_domain_micro_drive_service(benchmark):
    """Full drive service loop under 8 interleaved readers."""
    assert benchmark(drive_service) == 3_000


def test_domain_micro_server_smoke(benchmark):
    """End-to-end StreamServer smoke run (deterministic completions)."""
    assert benchmark(server_smoke) > 0


def test_domain_micro_workloads_report_rates():
    """The bench emitter's helper yields sane positive rates."""
    for name, workload in DOMAIN_WORKLOADS.items():
        rate, ops = ops_per_second(workload, repeats=1)
        assert rate > 0, name
        assert ops > 0, name
