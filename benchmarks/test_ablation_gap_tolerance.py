"""Ablation bench: near-sequential streams and the gap-tolerance knob.

The paper declares near-sequential streams out of scope; the server
exposes ``gap_tolerance`` anyway (DESIGN.md §5). Streams that skip small
chunks (e.g. reading every other 64K block of a video with trick-play)
break strict-continuation routing; with tolerance enabled they keep
riding their stream's read-ahead.
"""

from repro.core import ServerParams, StreamServer
from repro.disk import WD800JD
from repro.node import base_topology, build_node
from repro.sim import Simulator
from repro.io import IOKind, IORequest
from repro.units import KiB, MiB

NUM_STREAMS = 20
SKIP = 64 * KiB          # read 64K, skip 64K, repeat
REQUESTS_PER_STREAM = 48


def _near_sequential_run(gap_tolerance: int):
    sim = Simulator()
    node = build_node(sim, base_topology(disk_spec=WD800JD, seed=9))
    server = StreamServer(sim, node, ServerParams(
        read_ahead=1 * MiB, dispatch_width=NUM_STREAMS,
        memory_budget=64 * MiB, gap_tolerance=gap_tolerance))
    spacing = node.capacity_bytes // NUM_STREAMS
    spacing -= spacing % (64 * KiB)

    def reader(sim, stream):
        offset = stream * spacing
        for _ in range(REQUESTS_PER_STREAM):
            yield server.submit(IORequest(
                kind=IOKind.READ, disk_id=0, offset=offset,
                size=64 * KiB, stream_id=stream))
            offset += 64 * KiB + SKIP  # the near-sequential gap

    processes = [sim.process(reader(sim, s)) for s in range(NUM_STREAMS)]
    sim.run_until_event(sim.all_of(processes), limit=600.0)
    total = NUM_STREAMS * REQUESTS_PER_STREAM * 64 * KiB
    return total / sim.now / MiB, server.stats


def test_ablation_gap_tolerance(benchmark):
    def both():
        return (_near_sequential_run(0),
                _near_sequential_run(128 * KiB))

    (strict_mb, strict_stats), (tolerant_mb, tolerant_stats) = \
        benchmark.pedantic(both, iterations=1, rounds=1)
    # With tolerance, skipping readers are served from staged data.
    assert tolerant_stats.counter("staged_hits").count > \
        2 * strict_stats.counter("staged_hits").count
    # And aggregate throughput improves materially.
    assert tolerant_mb > 1.3 * strict_mb
