"""Kernel micro-benchmarks: the events/sec trajectory.

These time the exact workloads ``python -m repro.experiments.bench``
records into ``BENCH_engine.json``, so pytest-benchmark's statistics and
the committed trajectory file stay comparable. The PR that introduced
the sweep executor also landed the kernel fast paths (inlined run loop,
single-waiter callback dispatch, lazy Timeout naming); these benches are
the regression net for those wins.
"""

from repro.sim.microbench import (
    WORKLOADS,
    event_chain,
    events_per_second,
    process_fanout,
    timeout_churn,
)


def test_kernel_micro_timeout_churn(benchmark):
    """Pure Timeout-resume path (one pop + one resume per event)."""
    assert benchmark(timeout_churn) == 50_000


def test_kernel_micro_event_chain(benchmark):
    """Event.succeed + interleaved wake-ups of two processes."""
    assert benchmark(event_chain) == 50_000


def test_kernel_micro_process_fanout(benchmark):
    """Process bootstrap/finish churn under an AllOf join."""
    assert benchmark(process_fanout) == 15_000


def test_kernel_micro_workloads_report_rates():
    """The bench emitter's helper yields sane positive rates."""
    for name, workload in WORKLOADS.items():
        rate, events = events_per_second(workload, repeats=1)
        assert rate > 0, name
        assert events > 0, name
